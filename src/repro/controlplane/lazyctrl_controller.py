"""The LazyCtrl central controller.

The controller of the hybrid control model (paper §III-B.2) is responsible
for exactly three things:

1. maintaining the Central Location Information Base (C-LIB) from the state
   reports pushed by designated switches,
2. adapting the grouping of edge switches (delegated to the
   :class:`~repro.controlplane.grouping_manager.GroupingManager`), and
3. managing flow tables on edge switches to handle inter-group traffic and
   any fine-grained flows that need centralized control.

Everything else — intra-group forwarding, intra-group ARP resolution, local
host learning — happens inside the Local Control Groups, which is what keeps
the controller "lazy".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.config import LazyCtrlConfig
from repro.common.errors import ControlPlaneError
from repro.common.packets import FlowKey, Packet
from repro.datastructures.fib import CentralLib, FibEntry
from repro.datastructures.flow_table import ActionType, FlowAction
from repro.dataplane.edge_switch import LazyCtrlEdgeSwitch
from repro.controlplane.channels import ChannelRegistry, ChannelType
from repro.controlplane.group import LocalControlGroup
from repro.controlplane.grouping_manager import GroupingManager
from repro.controlplane.messages import GroupConfigMessage, GroupStateReportMessage
from repro.controlplane.tenant_manager import TenantManager
from repro.obs.events import FlowInstallEvent, FlowRemovedEvent, PacketInEvent
from repro.obs.tracer import NULL_TRACER
from repro.partitioning.sgi import Grouping
from repro.perf.recorder import NULL_RECORDER
from repro.simulation.metrics import CounterSeries, WorkloadMeter
from repro.topology.network import DataCenterNetwork


@dataclass(frozen=True, slots=True)
class InterGroupSetupResult:
    """What the controller did with one inter-group Packet_In."""

    ingress_switch_id: int
    egress_switch_id: Optional[int]
    resolved: bool
    relayed_groups: int = 0


class LazyCtrlController:
    """The lazy central controller of the hybrid control plane."""

    def __init__(
        self,
        network: DataCenterNetwork,
        *,
        config: LazyCtrlConfig | None = None,
        dynamic_grouping: bool = True,
        workload_bucket_seconds: float = 7200.0,
    ) -> None:
        self._network = network
        self.config = config or LazyCtrlConfig()
        self.clib = CentralLib()
        self.tenant_manager = TenantManager(network)
        self.grouping_manager = GroupingManager(
            grouping_config=self.config.grouping,
            policy=self.config.regrouping,
            dynamic=dynamic_grouping,
        )
        self._switches: Dict[int, LazyCtrlEdgeSwitch] = {}
        self._groups: Dict[int, LocalControlGroup] = {}
        self._group_of_switch: Dict[int, int] = {}
        self._channels = ChannelRegistry()
        self._rng = random.Random(self.config.grouping.random_seed)

        self.workload_series = CounterSeries(workload_bucket_seconds)
        self.workload_meter = WorkloadMeter(window_seconds=60.0)
        self.perf = NULL_RECORDER
        self.tracer = NULL_TRACER
        self.total_requests = 0
        self.flow_mods_sent = 0
        self.arp_relays = 0
        self.group_config_messages = 0
        self.regroupings_applied = 0
        self.flow_removed_received = 0

    # -- switch registration ----------------------------------------------------

    def register_switch(self, switch: LazyCtrlEdgeSwitch) -> None:
        """Connect an edge switch to the controller via a control link."""
        self._switches[switch.switch_id] = switch
        switch.flow_removed_handler = self.handle_flow_removed
        self._channels.get_or_create(ChannelType.CONTROL_LINK, "controller", f"switch:{switch.switch_id}")
        self.grouping_manager.register_switches([switch.switch_id])

    def switch(self, switch_id: int) -> LazyCtrlEdgeSwitch:
        """Return a registered switch by id."""
        try:
            return self._switches[switch_id]
        except KeyError as exc:
            raise ControlPlaneError(f"switch {switch_id} is not registered with the controller") from exc

    def switches(self) -> List[LazyCtrlEdgeSwitch]:
        """All registered switches ordered by id."""
        return [self._switches[switch_id] for switch_id in sorted(self._switches)]

    def switch_count(self) -> int:
        """Number of registered switches."""
        return len(self._switches)

    # -- bootstrap -----------------------------------------------------------------

    def bootstrap_host_locations(self) -> None:
        """Populate L-FIBs and the C-LIB from the topology's host placement.

        This models the host-discovery phase: every edge switch learns its
        locally attached VMs and the aggregated locations reach the C-LIB via
        the (initial) state reports.
        """
        for host in self._network.hosts():
            switch = self._switches.get(host.switch_id)
            if switch is None:
                continue
            switch.attach_host(host.mac, host.port, host.tenant_id)
            self.clib.record_host(host.mac, host.switch_id, host.tenant_id)
            self.tenant_manager.note_host_location(host.tenant_id, host.switch_id)

    # -- grouping ----------------------------------------------------------------------

    @property
    def groups(self) -> Dict[int, LocalControlGroup]:
        """The currently provisioned Local Control Groups, by group id."""
        return dict(self._groups)

    def group_of_switch(self, switch_id: int) -> Optional[int]:
        """The group currently containing ``switch_id``."""
        return self._group_of_switch.get(switch_id)

    def group_assignment(self) -> Dict[int, int]:
        """The full switch->group mapping."""
        return dict(self._group_of_switch)

    def apply_grouping(self, grouping: Grouping, *, now: float = 0.0) -> int:
        """Provision Local Control Groups according to ``grouping``.

        Returns the number of group-configuration messages sent.  Groups are
        rebuilt from scratch (the paper preloads rules to avoid interruptions
        during updates; rule preloading is modelled as part of the update cost
        rather than as packet loss).
        """
        messages = 0
        self._groups.clear()
        self._group_of_switch.clear()
        for group_id, member_ids in sorted(grouping.groups.items()):
            members = [self.switch(switch_id) for switch_id in sorted(member_ids)]
            group = LocalControlGroup(
                group_id,
                members,
                backup_count=self.config.designated_backup_count,
                rng=random.Random(self._rng.random()),
                channels=self._channels,
            )
            group.synchronize_gfibs()
            self._groups[group_id] = group
            for member in members:
                self._group_of_switch[member.switch_id] = group_id
                messages += 1
                self._send_group_config(group, member.switch_id, now)
        self.group_config_messages += messages
        self.regroupings_applied += 1
        return messages

    def _send_group_config(self, group: LocalControlGroup, switch_id: int, now: float) -> None:
        neighbors = group.ring_neighbors(switch_id)
        message = GroupConfigMessage.create(
            group_id=group.group_id,
            target_switch_id=switch_id,
            member_switch_ids=tuple(group.member_ids()),
            designated_switch_id=group.designated_switch_id,
            backup_switch_ids=tuple(group.backup_switch_ids),
            ring_predecessor=neighbors.predecessor,
            ring_successor=neighbors.successor,
            timestamp=now,
        )
        channel = self._channels.get_or_create(ChannelType.CONTROL_LINK, "controller", f"switch:{switch_id}")
        channel.deliver(message, size_bytes=96 + 4 * len(group))

    # -- state reports -------------------------------------------------------------------

    def receive_state_report(self, report: GroupStateReportMessage) -> int:
        """Fold a designated switch's aggregated state report into the C-LIB."""
        changed = 0
        for switch_id, entries in report.switch_lfibs:
            snapshot = {
                mac: FibEntry(mac=mac, port=port, tenant_id=tenant_id)
                for mac, port, tenant_id in entries
            }
            changed += self.clib.update_from_lfib(switch_id, snapshot)
            for mac, _port, tenant_id in entries:
                self.tenant_manager.note_host_location(tenant_id, switch_id)
        return changed

    def collect_state_reports(self, *, now: float = 0.0) -> int:
        """Pull a state report from every group (periodic asynchronous sync).

        Reports are incremental: each group serializes only the L-FIBs that
        changed since its previous periodic report (the C-LIB merge is
        idempotent, so the resulting controller state is identical).
        """
        changed = 0
        for group in self._groups.values():
            report = group.build_state_report(timestamp=now, only_changes=True)
            channel = self._channels.get_or_create(
                ChannelType.STATE_LINK, "controller", f"switch:{group.designated_switch_id}"
            )
            channel.deliver(report, size_bytes=128 + 24 * sum(len(entries) for _, entries in report.switch_lfibs))
            changed += self.receive_state_report(report)
        return changed

    # -- inter-group control ------------------------------------------------------------------

    def handle_packet_in(self, ingress_switch_id: int, packet: Packet, now: float) -> InterGroupSetupResult:
        """Handle a Packet_In for a flow the ingress group could not resolve.

        The controller locates the destination in the C-LIB and installs an
        encapsulation rule on the ingress switch.  When even the C-LIB does
        not know the destination (cold start), the request is relayed as an
        ARP to the designated switches of every group hosting the tenant.
        """
        self._record_request(now)
        if self.tracer.enabled:
            self.tracer.emit(
                PacketInEvent(time=now, switch_id=ingress_switch_id, kind="inter_group")
            )
        egress = self.clib.locate(packet.dst_mac)
        if egress is not None:
            self._install_inter_group_rule(ingress_switch_id, packet, egress, now)
            return InterGroupSetupResult(
                ingress_switch_id=ingress_switch_id,
                egress_switch_id=egress,
                resolved=True,
            )
        relayed = self._relay_arp(packet, now)
        # After the relay the owning switch answers and the location becomes
        # known; resolve from the ground truth topology if possible.
        try:
            host = self._network.host_by_mac(packet.dst_mac)
        except Exception:
            return InterGroupSetupResult(
                ingress_switch_id=ingress_switch_id,
                egress_switch_id=None,
                resolved=False,
                relayed_groups=relayed,
            )
        self.clib.record_host(packet.dst_mac, host.switch_id, host.tenant_id)
        self._install_inter_group_rule(ingress_switch_id, packet, host.switch_id, now)
        return InterGroupSetupResult(
            ingress_switch_id=ingress_switch_id,
            egress_switch_id=host.switch_id,
            resolved=True,
            relayed_groups=relayed,
        )

    def handle_arp_escalation(self, ingress_switch_id: int, packet: Packet, now: float) -> int:
        """Handle an ARP request escalated by a group (level iii of §III-D.3).

        Returns the number of groups the request was relayed to.
        """
        self._record_request(now)
        if self.tracer.enabled:
            self.tracer.emit(PacketInEvent(time=now, switch_id=ingress_switch_id, kind="arp"))
        return self._relay_arp(packet, now)

    def _relay_arp(self, packet: Packet, now: float) -> int:
        groups = self.tenant_manager.groups_with_tenant(packet.tenant_id, self._group_of_switch)
        relayed = 0
        for group_id in sorted(groups):
            group = self._groups.get(group_id)
            if group is None:
                continue
            channel = self._channels.get_or_create(
                ChannelType.CONTROL_LINK, "controller", f"switch:{group.designated_switch_id}"
            )
            relayed += 1
        self.arp_relays += relayed
        return relayed

    def _install_inter_group_rule(self, ingress_switch_id: int, packet: Packet, egress_switch_id: int, now: float) -> None:
        switch = self._switches.get(ingress_switch_id)
        if switch is None:
            return
        key = FlowKey(src_mac=packet.src_mac, dst_mac=packet.dst_mac, tenant_id=packet.tenant_id)
        if egress_switch_id == ingress_switch_id:
            entry = switch.lfib.lookup(packet.dst_mac)
            action = FlowAction(ActionType.FORWARD_LOCAL, entry.port if entry else 1)
        else:
            action = FlowAction(ActionType.ENCAP_TO_SWITCH, egress_switch_id)
        switch.install_flow_rule(key, action, now=now)
        self.flow_mods_sent += 1
        if self.tracer.enabled:
            self.tracer.emit(
                FlowInstallEvent(
                    time=now,
                    switch_id=ingress_switch_id,
                    egress_switch_id=egress_switch_id,
                )
            )

    def handle_flow_removed(self, switch_id: int, rule, now: float, reason) -> None:
        """Note a ``flow_removed`` sent by a switch whose table aged out a rule.

        The notification is asynchronous bookkeeping, not a request for new
        state: it is counted separately from ``total_requests`` so finite
        tables change the controller's *re-install* load (via the subsequent
        ``packet_in``), never the workload accounting of the removal itself.
        """
        self.flow_removed_received += 1
        self.perf.count("controller.flow_removed")
        if self.tracer.enabled:
            self.tracer.emit(
                FlowRemovedEvent(time=now, switch_id=switch_id, reason=reason.value)
            )

    # -- workload accounting --------------------------------------------------------------------

    def current_load_rps(self, now: float) -> float:
        """Controller load (requests per second) over the recent window."""
        return self.workload_meter.rate(now)

    def _record_request(self, now: float) -> None:
        self.total_requests += 1
        self.workload_series.record(now)
        self.workload_meter.record(now)
        self.perf.count("controller.requests")

    # -- periodic housekeeping ---------------------------------------------------------------------

    def periodic_check(self, now: float) -> bool:
        """Run the regrouping check; apply and provision a new grouping when one is produced.

        Returns ``True`` when a regrouping was applied.
        """
        decision = self.grouping_manager.check(now, self.current_load_rps(now))
        if decision.regrouped and decision.grouping is not None:
            self.apply_grouping(decision.grouping, now=now)
            return True
        return False

    def storage_bytes_per_switch(self) -> Dict[int, int]:
        """G-FIB storage consumed on every switch (the §V-D overhead metric)."""
        return {switch_id: switch.storage_bytes() for switch_id, switch in self._switches.items()}
