"""Control plane: channels, messages, groups, controllers and grouping management."""

from repro.controlplane.channels import ChannelRegistry, ChannelStats, ChannelType, ControlChannel
from repro.controlplane.group import LocalControlGroup, RingNeighbors
from repro.controlplane.grouping_manager import GroupingManager, RegroupingDecision
from repro.controlplane.lazyctrl_controller import InterGroupSetupResult, LazyCtrlController
from repro.controlplane.messages import (
    ControlMessage,
    FailureNotificationMessage,
    FlowModMessage,
    GroupConfigMessage,
    GroupStateReportMessage,
    KeepaliveMessage,
    LfibUpdateMessage,
    MessageType,
    PacketInMessage,
)
from repro.controlplane.openflow_controller import OpenFlowController, PacketInResult
from repro.controlplane.state_dissemination import DisseminationStats, StateDisseminator
from repro.controlplane.tenant_manager import TenantManager

__all__ = [
    "ChannelRegistry",
    "ChannelStats",
    "ChannelType",
    "ControlChannel",
    "ControlMessage",
    "DisseminationStats",
    "FailureNotificationMessage",
    "FlowModMessage",
    "GroupConfigMessage",
    "GroupStateReportMessage",
    "GroupingManager",
    "InterGroupSetupResult",
    "KeepaliveMessage",
    "LazyCtrlController",
    "LfibUpdateMessage",
    "LocalControlGroup",
    "MessageType",
    "OpenFlowController",
    "PacketInMessage",
    "PacketInResult",
    "RegroupingDecision",
    "RingNeighbors",
    "StateDisseminator",
    "TenantManager",
]
