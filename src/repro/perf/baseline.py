"""Benchmark-baseline comparison backing ``repro bench --check``.

A baseline is simply a committed ``BENCH_<scenario>.json`` (the file
``repro bench`` writes) checked into ``benchmarks/baselines/``.  The check
compares a freshly produced payload against the committed one:

* **deterministic counters** (flow counts, controller requests, grouping
  updates, churn events) must match exactly — any drift means the replay
  semantics changed and either a bug slipped in or the baselines must be
  regenerated deliberately; the per-bucket ``timeline`` count series get the
  same bit-for-bit treatment (each sums to one of the scalar counters);
* **deterministic floats** (mean/peak Krps, mean latency) must match to
  within a relative epsilon that only absorbs JSON round-off;
* **wall-clock metrics** (``runtime_seconds``, ``flows_per_second``) get a
  generous tolerance band (±30 % by default).  Only *regressions* beyond the
  band fail the check; running faster than the band produces a note
  suggesting the baselines be refreshed, because punishing an improvement
  would gate exactly the PRs this scheme exists to encourage;
* **peak RSS** (``peak_rss_bytes``) is tracked but never gated — it is a
  process-lifetime high-water mark that shifts with the allocator and the
  Python build; a clear blow-up beyond the band only produces a note.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Tuple

#: Per-system keys that must match bit for bit.
EXACT_SYSTEM_KEYS = (
    "total_controller_requests",
    "grouping_updates",
    "churn_events",
    "churn_attributed_regroupings",
    "flows_handled",
    # Finite-flow-table pressure accounting: replay arithmetic, fully
    # deterministic (baselines predating the keys simply skip them).
    "table_overflows",
    "table_evictions",
    "table_timeouts",
    "table_reinstalls",
    "table_peak_occupancy",
    "flow_removed_messages",
    # Bandwidth/congestion accounting: flows that arrived on an uplink at
    # or over capacity, and the number of (link, window) cells offered at
    # least their capacity — pure replay arithmetic on capacitated runs.
    "congested_flows",
    "link_congested_cells",
)

#: Per-system deterministic floats (replay arithmetic, not wall-clock).
CLOSE_SYSTEM_KEYS = (
    "mean_krps",
    "peak_krps",
    "mean_latency_ms",
    # Peak offered-load fraction and whole-run latency percentiles: replay
    # arithmetic too, but float-folded (sums of per-flow contributions /
    # log-histogram bin midpoints), so they get the epsilon treatment.
    "link_peak_utilization",
    "latency_p50_ms",
    "latency_p95_ms",
    "latency_p99_ms",
)

#: Top-level keys that must match exactly.
EXACT_TOP_KEYS = ("scenario", "flows", "switches", "hosts")

#: Relative epsilon for deterministic floats (absorbs JSON round-off only).
CLOSE_RELATIVE_EPSILON = 1e-9


@dataclass(slots=True)
class BaselineCheck:
    """Outcome of checking one benchmark payload against its baseline."""

    scenario: str
    failures: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the payload is within baseline expectations."""
        return not self.failures


def _close(current: float, baseline: float) -> bool:
    return math.isclose(current, baseline, rel_tol=CLOSE_RELATIVE_EPSILON, abs_tol=1e-21)


def _timeline_series_drift(expected: Any, got: Any) -> str | None:
    """Describe how one timeline count series drifted, or ``None`` if it didn't.

    Pinpoints the drifted bucket indices instead of dumping both full series:
    a 12-bucket day is readable either way, but a fine-grained timeline has
    hundreds of buckets and the old whole-list dump buried the actual drift.
    Every drifted bucket is counted; the message previews the first few.
    """
    if got == expected:
        return None
    if got is None:
        return f"series missing from the fresh payload (baseline has {expected!r})"
    if not isinstance(expected, list) or not isinstance(got, list):
        return f"expected {expected!r}, got {got!r}"
    if len(got) != len(expected):
        return f"bucket count {len(got)} != baseline {len(expected)}"
    drifted = [index for index, pair in enumerate(zip(expected, got)) if pair[0] != pair[1]]
    preview = ", ".join(f"[{index}] {expected[index]!r}->{got[index]!r}" for index in drifted[:5])
    more = "" if len(drifted) <= 5 else f", ... {len(drifted) - 5} more"
    return f"{len(drifted)}/{len(expected)} buckets drifted: {preview}{more}"


def _compare_timeline(
    check: BaselineCheck,
    name: str,
    current: Dict[str, Any] | None,
    baseline: Dict[str, Any] | None,
) -> None:
    """Exact-check one system's per-bucket timeline counts.

    The count series are replay arithmetic (each sums to one of the scalar
    counters above), so they get the same bit-for-bit treatment.  Baselines
    predating the key skip the check.  Every drifted series (and every
    drifted bucket within it) is reported in the one pass.
    """
    if baseline is None:
        return
    if current is None:
        check.failures.append(
            f"{name}.timeline: baseline carries a timeline but the fresh payload does not"
        )
        return
    if not _close(
        float(current.get("bucket_seconds", 0.0)), float(baseline.get("bucket_seconds", 0.0))
    ):
        check.failures.append(
            f"{name}.timeline.bucket_seconds: expected {baseline.get('bucket_seconds')!r}, "
            f"got {current.get('bucket_seconds')!r}"
        )
    baseline_counts = baseline.get("counts", {})
    current_counts = current.get("counts", {})
    for series in sorted(baseline_counts):
        drift = _timeline_series_drift(baseline_counts[series], current_counts.get(series))
        if drift is not None:
            check.failures.append(f"{name}.timeline.{series}: {drift}")


def compare_payloads(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    *,
    tolerance: float = 0.30,
) -> BaselineCheck:
    """Compare one freshly produced benchmark payload against its baseline."""
    check = BaselineCheck(scenario=str(current.get("scenario", "<unnamed>")))

    for key in EXACT_TOP_KEYS:
        if current.get(key) != baseline.get(key):
            check.failures.append(
                f"{key}: expected {baseline.get(key)!r}, got {current.get(key)!r}"
            )

    current_systems = current.get("systems", {})
    baseline_systems = baseline.get("systems", {})
    if sorted(current_systems) != sorted(baseline_systems):
        check.failures.append(
            f"systems: expected {sorted(baseline_systems)}, got {sorted(current_systems)}"
        )
    for name in sorted(set(current_systems) & set(baseline_systems)):
        cur, base = current_systems[name], baseline_systems[name]
        for key in EXACT_SYSTEM_KEYS:
            if key not in base:
                continue  # baseline predates the key; regenerating will add it
            if cur.get(key) != base.get(key):
                check.failures.append(
                    f"{name}.{key}: expected {base.get(key)!r}, got {cur.get(key)!r}"
                )
        for key in CLOSE_SYSTEM_KEYS:
            if key not in base:
                continue
            if not _close(float(cur.get(key, 0.0)), float(base[key])):
                check.failures.append(
                    f"{name}.{key}: expected {base[key]!r}, got {cur.get(key)!r} "
                    "(deterministic float drifted)"
                )
        _compare_timeline(check, name, cur.get("timeline"), base.get("timeline"))

    for key in ("runtime_seconds", "flows_per_second"):
        if key not in baseline or key not in current:
            continue
        base_value = float(baseline[key])
        cur_value = float(current[key])
        if base_value <= 0:
            continue
        # Multiplicative band: a factor of (1 + tolerance) in either
        # direction, so the check stays meaningful for tolerance >= 1
        # (a subtractive lower bound would hit zero and never fire).
        # Lower runtime / higher throughput is an improvement, never a failure.
        regressed = (
            cur_value > base_value * (1.0 + tolerance)
            if key == "runtime_seconds"
            else cur_value < base_value / (1.0 + tolerance)
        )
        improved = (
            cur_value < base_value / (1.0 + tolerance)
            if key == "runtime_seconds"
            else cur_value > base_value * (1.0 + tolerance)
        )
        if regressed:
            check.failures.append(
                f"{key}: {cur_value:.3f} vs baseline {base_value:.3f} "
                f"(beyond ±{tolerance:.0%} tolerance)"
            )
        elif improved:
            check.notes.append(
                f"{key}: {cur_value:.3f} beats baseline {base_value:.3f} by more than "
                f"{tolerance:.0%} — consider regenerating benchmarks/baselines"
            )

    # Peak RSS is tracked, never gated: it is a process-lifetime high-water
    # mark whose absolute value shifts with the allocator, the Python build
    # and whatever ran earlier in the process.  A clear blow-up still gets a
    # note so a broken memory bound is visible — but only for streaming
    # scenarios, the ones that actually promise a memory bound; on a
    # materialized replay the RSS is dominated by the resident trace and the
    # note would be pure noise.
    if current.get("streaming", False):
        base_rss = float(baseline.get("peak_rss_bytes", 0) or 0)
        cur_rss = float(current.get("peak_rss_bytes", 0) or 0)
        if base_rss > 0 and cur_rss > base_rss * (1.0 + tolerance):
            check.notes.append(
                f"peak_rss_bytes: {cur_rss:,.0f} vs baseline {base_rss:,.0f} "
                f"(beyond +{tolerance:.0%}; non-gating — the chunked replay's "
                "memory bound may be broken)"
            )
    return check


def check_against_baselines(
    payloads: List[Dict[str, Any]],
    baseline_dir: str | Path,
    *,
    tolerance: float = 0.30,
) -> Tuple[List[BaselineCheck], List[str], List[str]]:
    """Check freshly produced payloads against committed baseline files.

    Returns ``(checks, problems, stale)``: the per-scenario checks, global
    problems (missing baseline files — a payload without a committed
    baseline is a failure, the whole point of the scheme is that baselines
    live in-repo), and committed baseline files no fresh payload covered.
    Stale files are surfaced rather than failed, because partial runs
    (``--presets`` subsets) legitimately skip scenarios — but in a full run
    a stale file means the perf gate silently lost coverage.
    """
    directory = Path(baseline_dir)
    checks: List[BaselineCheck] = []
    problems: List[str] = []
    covered = set()
    for payload in payloads:
        scenario = str(payload.get("scenario", "<unnamed>"))
        path = directory / f"BENCH_{scenario}.json"
        covered.add(path.name)
        if not path.is_file():
            problems.append(
                f"no committed baseline {path} — run 'repro bench' and commit the "
                f"BENCH_{scenario}.json it writes"
            )
            continue
        baseline = json.loads(path.read_text(encoding="utf-8"))
        checks.append(compare_payloads(payload, baseline, tolerance=tolerance))
    stale = sorted(
        str(path)
        for path in directory.glob("BENCH_*.json")
        if path.name not in covered
    )
    return checks, problems, stale
