"""Low-overhead counter/timer instrumentation for the replay hot path.

Two recorders share one tiny interface:

* :class:`NullRecorder` — the default everywhere.  Every method is a no-op
  and :meth:`NullRecorder.timeit` returns a shared context manager whose
  ``__enter__``/``__exit__`` do nothing, so instrumented call sites cost one
  attribute lookup and one call when profiling is off.  Hot loops that fire
  per flow additionally guard on the class attribute ``enabled``.
* :class:`PerfRecorder` — the real thing: a named-counter registry plus a
  stage-timer registry with nesting support (a stage's *exclusive* time is
  its total wall time minus the time spent in stages nested inside it).

The recorder deliberately never touches simulation time; it measures host
wall-clock (``time.perf_counter``) because its job is to explain where the
*replayer* spends real seconds, not where the simulated network spends
simulated ones.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.perf.report import PerfSnapshot, StageStats


def peak_rss_bytes() -> int:
    """The process's peak resident-set size in bytes (0 when unavailable).

    Reads ``ru_maxrss`` for the current process: the high-water mark of
    physical memory since process start.  It only ever grows, so comparing
    it before/after a replay bounds that replay's footprint from above —
    which is exactly what the streaming pipeline's O(chunk) claim needs.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return 0
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes, macOS reports bytes.
    return usage if sys.platform == "darwin" else usage * 1024


class _NullTimer:
    """Shared do-nothing context manager returned by the null recorder."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_TIMER = _NullTimer()


class NullRecorder:
    """The disabled recorder: every operation is a no-op.

    A single module-level instance (:data:`NULL_RECORDER`) is shared by every
    component, so "instrumentation off" costs no allocations at all.
    """

    __slots__ = ()

    enabled = False

    def count(self, name: str, amount: int = 1) -> None:
        """Discard a counter increment."""

    def gauge(self, name: str, value: float) -> None:
        """Discard a gauge observation."""

    def timeit(self, name: str) -> _NullTimer:
        """Return the shared no-op context manager."""
        return _NULL_TIMER

    def snapshot(self, *, wall_seconds: float = 0.0, flows_replayed: int = 0) -> Optional[PerfSnapshot]:
        """The null recorder has nothing to report."""
        return None


#: The shared disabled recorder; components default to this instance.
NULL_RECORDER = NullRecorder()


@dataclass(slots=True)
class _StageAccumulator:
    """Mutable per-stage accounting: call count, total and nested-child time."""

    calls: int = 0
    total_seconds: float = 0.0
    child_seconds: float = 0.0


class _StageTimer:
    """Context manager timing one entry into a named stage (supports nesting)."""

    __slots__ = ("_recorder", "_name", "_start")

    def __init__(self, recorder: "PerfRecorder", name: str) -> None:
        self._recorder = recorder
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_StageTimer":
        self._recorder._stack.append(self._name)
        self._start = perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        elapsed = perf_counter() - self._start
        recorder = self._recorder
        recorder._stack.pop()
        stage = recorder._stages.get(self._name)
        if stage is None:
            stage = recorder._stages[self._name] = _StageAccumulator()
        stage.calls += 1
        stage.total_seconds += elapsed
        if recorder._stack:
            parent = recorder._stages.get(recorder._stack[-1])
            if parent is None:
                parent = recorder._stages[recorder._stack[-1]] = _StageAccumulator()
            parent.child_seconds += elapsed
        return False


class PerfRecorder:
    """Collects named counters, gauges and nested stage timings during one replay."""

    __slots__ = ("counters", "gauges", "_stages", "_stack")

    enabled = True

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self._stages: Dict[str, _StageAccumulator] = {}
        self._stack: List[str] = []

    # -- counters -----------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the named counter (created on first use)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        """Current value of the named counter (0 when never incremented)."""
        return self.counters.get(name, 0)

    # -- gauges -------------------------------------------------------------

    def gauge(self, name: str, value: float) -> None:
        """Record a point-in-time measurement (last observation wins).

        Gauges hold sampled values — peak RSS, a queue depth — as opposed to
        counters, which accumulate.
        """
        self.gauges[name] = float(value)

    # -- timers -------------------------------------------------------------

    def timeit(self, name: str) -> _StageTimer:
        """Context manager accumulating wall time into stage ``name``.

        Stages nest: time spent inside an inner ``timeit`` is attributed to
        both stages' totals, and subtracted from the outer stage's
        *exclusive* time in the snapshot.
        """
        return _StageTimer(self, name)

    def stage_total_seconds(self, name: str) -> float:
        """Total (inclusive) seconds accumulated by stage ``name``."""
        stage = self._stages.get(name)
        return stage.total_seconds if stage is not None else 0.0

    def stage_calls(self, name: str) -> int:
        """Number of completed entries into stage ``name``."""
        stage = self._stages.get(name)
        return stage.calls if stage is not None else 0

    def stage_stats(self) -> Tuple[StageStats, ...]:
        """Per-stage statistics ordered by descending total time."""
        stats = [
            StageStats(
                name=name,
                calls=stage.calls,
                total_seconds=stage.total_seconds,
                exclusive_seconds=max(0.0, stage.total_seconds - stage.child_seconds),
            )
            for name, stage in self._stages.items()
        ]
        stats.sort(key=lambda item: (-item.total_seconds, item.name))
        return tuple(stats)

    # -- snapshots ------------------------------------------------------------

    def snapshot(self, *, wall_seconds: float = 0.0, flows_replayed: int = 0) -> PerfSnapshot:
        """Freeze the collected metrics into a serializable snapshot."""
        if wall_seconds <= 0.0:
            wall_seconds = self.stage_total_seconds("replay")
        return PerfSnapshot(
            wall_seconds=wall_seconds,
            flows_replayed=flows_replayed,
            flows_per_second=(flows_replayed / wall_seconds) if wall_seconds > 0 else 0.0,
            counters=dict(sorted(self.counters.items())),
            stages=self.stage_stats(),
            gauges=dict(sorted(self.gauges.items())),
        )
