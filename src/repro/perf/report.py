"""Serializable performance snapshots and their human-readable rendering.

A :class:`PerfSnapshot` is what one instrumented replay leaves behind: the
headline throughput (flows/sec over host wall-clock), the counter registry,
and a per-stage timing breakdown with inclusive and exclusive seconds.  It
rides on :class:`~repro.core.results.RunResult` and survives the same JSON
round-trip as every other result dataclass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.common.serialize import dataclass_from_dict, dataclass_to_dict


@dataclass(frozen=True, slots=True)
class StageStats:
    """Timing of one named stage over a whole replay.

    ``total_seconds`` is inclusive wall time; ``exclusive_seconds`` subtracts
    the time spent inside stages nested within this one.
    """

    name: str
    calls: int
    total_seconds: float
    exclusive_seconds: float


@dataclass(frozen=True, slots=True)
class PerfSnapshot:
    """Everything one instrumented replay measured."""

    wall_seconds: float
    flows_replayed: int
    flows_per_second: float
    counters: Dict[str, int] = field(default_factory=dict)
    stages: Tuple[StageStats, ...] = ()
    gauges: Dict[str, float] = field(default_factory=dict)

    def stage(self, name: str) -> StageStats:
        """Look a stage up by name (raises ``KeyError`` when absent)."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"no stage named {name!r}; have: {[s.name for s in self.stages]}")

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready representation of this snapshot."""
        return dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PerfSnapshot":
        """Rebuild a snapshot from :meth:`to_dict` output.

        Hand-written or legacy payloads sometimes carry ``"counters": null``
        or ``"gauges": null`` where this writer omits the key; both mean "no
        registry collected" and load as the empty dict.  An explicit
        ``{"g": 0.0}`` keeps its recorded zero — absence and zero are
        different facts about a run and must round-trip as such.
        """
        cleaned = {
            key: value
            for key, value in data.items()
            if value is not None or key not in ("counters", "gauges")
        }
        return dataclass_from_dict(cls, cleaned)


def format_kernel_breakdown(snapshot: PerfSnapshot) -> str:
    """Render the vectorized-kernel section of a profile, if the kernel ran.

    Shows what a bench run cannot: how much of the replay actually stayed on
    the array path (overall and for the worst single batch) and where the
    kernel's own time went, so a fallback regression — a scenario drifting
    into scalar territory — is visible from ``repro profile`` alone.
    Returns the empty string for runs that never engaged the kernel.
    """
    counters = snapshot.counters
    vectorized = counters.get("kernel.flows_vectorized")
    if vectorized is None:
        return ""
    fallback = counters.get("kernel.flows_fallback", 0)
    total = vectorized + fallback
    coverage = vectorized / total if total else 0.0
    lines = [
        "kernel:",
        f"  coverage: {coverage:.1%} ({vectorized:,} of {total:,} flows on the array path)",
    ]
    batches = counters.get("kernel.batches", 0)
    bypassed = counters.get("kernel.batches_bypassed", 0)
    lines.append(f"  batches: {batches:,} ({bypassed:,} bypassed to the scalar path whole)")
    floor = snapshot.gauges.get("kernel.min_batch_coverage")
    if floor is not None:
        lines.append(f"  worst single-batch coverage: {floor:.1%}")
    for name in ("kernel_classify", "kernel_fallback", "kernel_accumulate"):
        try:
            stage = snapshot.stage(name)
        except KeyError:
            continue
        lines.append(
            f"  {name.removeprefix('kernel_')}: {stage.total_seconds:.3f}s over {stage.calls:,} batches"
        )
    return "\n".join(lines)


def format_stage_breakdown(snapshot: PerfSnapshot, *, label: str = "") -> str:
    """Render one snapshot as the per-stage table ``repro profile`` prints."""
    from repro.analysis.reports import format_table

    wall = snapshot.wall_seconds
    rows: List[List[object]] = []
    for stage in snapshot.stages:
        share = (stage.total_seconds / wall * 100.0) if wall > 0 else 0.0
        rows.append(
            [
                stage.name,
                stage.calls,
                f"{stage.total_seconds:.3f}",
                f"{stage.exclusive_seconds:.3f}",
                f"{share:.1f}%",
            ]
        )
    title = f"Stage breakdown — {label}" if label else "Stage breakdown"
    table = format_table(
        ["Stage", "Calls", "Total (s)", "Exclusive (s)", "% of wall"], rows, title=title
    )
    headline = (
        f"wall {snapshot.wall_seconds:.3f}s · {snapshot.flows_replayed} flows · "
        f"{snapshot.flows_per_second:,.0f} flows/sec"
    )
    counter_lines = [f"  {name} = {value}" for name, value in snapshot.counters.items()]
    parts = [table, headline]
    kernel = format_kernel_breakdown(snapshot)
    if kernel:
        parts.append(kernel)
    if counter_lines:
        parts.append("counters:")
        parts.extend(counter_lines)
    if snapshot.gauges:
        parts.append("gauges:")
        parts.extend(f"  {name} = {value:,.0f}" for name, value in snapshot.gauges.items())
    return "\n".join(parts)
