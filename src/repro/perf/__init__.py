"""Performance instrumentation: recorders, snapshots and baseline checks.

The package has three halves:

* :mod:`repro.perf.recorder` — the near-zero-cost instrumentation layer
  (:data:`NULL_RECORDER` by default, :class:`PerfRecorder` when profiling);
* :mod:`repro.perf.report` — the serializable :class:`PerfSnapshot` carried
  on run results and the ``repro profile`` rendering;
* :mod:`repro.perf.baseline` — the committed-baseline comparison behind
  ``repro bench --check``.
"""

from repro.perf.baseline import BaselineCheck, check_against_baselines, compare_payloads
from repro.perf.recorder import NULL_RECORDER, NullRecorder, PerfRecorder, peak_rss_bytes
from repro.perf.report import PerfSnapshot, StageStats, format_stage_breakdown

__all__ = [
    "BaselineCheck",
    "NULL_RECORDER",
    "NullRecorder",
    "PerfRecorder",
    "PerfSnapshot",
    "StageStats",
    "check_against_baselines",
    "compare_payloads",
    "format_stage_breakdown",
    "peak_rss_bytes",
]
