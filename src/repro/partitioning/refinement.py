"""Boundary Fiduccia–Mattheyses-style refinement of a k-way partition.

After the initial partition is projected back to a finer graph, each vertex
may have a better home in a neighbouring part.  The refinement pass visits
boundary vertices in order of decreasing potential gain and greedily moves a
vertex to the part that maximizes the cut-weight reduction while keeping
every part under the weight limit.  Multiple passes are run until no pass
improves the cut (or the configured pass limit is reached).

This is the size-constrained variant the paper needs: unlike textbook k-way
FM, a move is only admissible when the destination part stays within the
group-size limit.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.partitioning.graph import WeightedGraph, cut_weight, partition_weights


def _external_gains(graph: WeightedGraph, assignment: Mapping[int, int], vertex: int) -> Dict[int, float]:
    """Edge weight from ``vertex`` to each part (including its own)."""
    gains: Dict[int, float] = {}
    for neighbor, weight in graph.neighbors(vertex).items():
        part = assignment[neighbor]
        gains[part] = gains.get(part, 0.0) + weight
    return gains


def refine_once(
    graph: WeightedGraph,
    assignment: Dict[int, int],
    *,
    max_part_weight: float,
    parts: int,
) -> float:
    """Run one greedy refinement pass in place; return total gain achieved."""
    weights = partition_weights(graph, assignment)
    for part in range(parts):
        weights.setdefault(part, 0.0)
    total_gain = 0.0

    # Boundary vertices sorted by their best potential gain, largest first,
    # so the most impactful moves are attempted before the balance tightens.
    candidates: list[tuple[float, int, int]] = []
    for vertex, part in assignment.items():
        gains = _external_gains(graph, assignment, vertex)
        internal = gains.get(part, 0.0)
        for other_part, external in gains.items():
            if other_part == part:
                continue
            candidates.append((external - internal, vertex, other_part))
    candidates.sort(key=lambda item: -item[0])

    moved: set[int] = set()
    for _, vertex, target_part in candidates:
        if vertex in moved:
            continue
        current_part = assignment[vertex]
        if current_part == target_part:
            continue
        vertex_weight = graph.vertex_weight(vertex)
        if weights[target_part] + vertex_weight > max_part_weight + 1e-9:
            continue
        # Recompute the gain against the *current* assignment because earlier
        # moves in this pass may have changed the neighbourhood.
        gains = _external_gains(graph, assignment, vertex)
        gain = gains.get(target_part, 0.0) - gains.get(current_part, 0.0)
        if gain <= 1e-12:
            continue
        assignment[vertex] = target_part
        weights[current_part] -= vertex_weight
        weights[target_part] += vertex_weight
        moved.add(vertex)
        total_gain += gain
    return total_gain


def swap_refine_once(
    graph: WeightedGraph,
    assignment: Dict[int, int],
    *,
    max_part_weight: float,
) -> float:
    """One pass of pairwise-swap refinement; returns the total gain achieved.

    When every part sits at (or near) the size limit, single-vertex moves are
    all inadmissible and plain FM refinement stalls.  Swapping two vertices
    between their parts keeps both part weights unchanged (for unit-weight
    vertices, the common case at the finest level) while still reducing the
    cut, which is exactly the situation the size-constrained switch-grouping
    problem creates.  Swap partners are drawn from the whole target part, not
    only from the vertex's neighbourhood — on sparse, star-like intensity
    graphs the right partner is usually an isolated vertex that merely needs
    to get out of the way.
    """
    weights = partition_weights(graph, assignment)
    total_gain = 0.0
    part_members: Dict[int, set[int]] = {}
    for member, member_part in assignment.items():
        part_members.setdefault(member_part, set()).add(member)

    for vertex, part in list(assignment.items()):
        part = assignment[vertex]
        gains = _external_gains(graph, assignment, vertex)
        internal = gains.get(part, 0.0)
        best_part = None
        best_external = internal
        for other_part, external in gains.items():
            if other_part != part and external > best_external:
                best_external = external
                best_part = other_part
        if best_part is None:
            continue
        own_gain = best_external - internal
        # Find the partner in the target part whose departure costs the least
        # (isolated vertices cost nothing; strongly attached ones are skipped).
        best_partner = None
        best_combined_gain = 1e-12
        for candidate in part_members.get(best_part, ()):  # all members, not just neighbours
            if candidate == vertex:
                continue
            partner_gains = _external_gains(graph, assignment, candidate)
            partner_gain = partner_gains.get(part, 0.0) - partner_gains.get(best_part, 0.0)
            # Swapping removes the contribution of the edge between the two
            # vertices twice (it stays a cut edge), hence the correction.
            mutual = 2.0 * graph.edge_weight(vertex, candidate)
            combined = own_gain + partner_gain - mutual
            if combined > best_combined_gain:
                best_combined_gain = combined
                best_partner = candidate
        if best_partner is None:
            continue
        vertex_weight = graph.vertex_weight(vertex)
        partner_weight = graph.vertex_weight(best_partner)
        new_weight_target = weights.get(best_part, 0.0) - partner_weight + vertex_weight
        new_weight_source = weights.get(part, 0.0) - vertex_weight + partner_weight
        if new_weight_target > max_part_weight + 1e-9 or new_weight_source > max_part_weight + 1e-9:
            continue
        assignment[vertex] = best_part
        assignment[best_partner] = part
        part_members[part].discard(vertex)
        part_members[best_part].discard(best_partner)
        part_members[best_part].add(vertex)
        part_members[part].add(best_partner)
        weights[best_part] = new_weight_target
        weights[part] = new_weight_source
        total_gain += best_combined_gain
    return total_gain


def refine(
    graph: WeightedGraph,
    assignment: Dict[int, int],
    *,
    max_part_weight: float,
    parts: int,
    max_passes: int = 8,
) -> Dict[int, int]:
    """Run refinement passes until convergence; returns the refined assignment.

    Each pass combines greedy single-vertex moves with pairwise swaps (the
    latter matter when parts sit at the size limit).  The input assignment is
    modified in place and also returned for convenience.
    """
    for _ in range(max_passes):
        gain = refine_once(graph, assignment, max_part_weight=max_part_weight, parts=parts)
        gain += swap_refine_once(graph, assignment, max_part_weight=max_part_weight)
        if gain <= 1e-12:
            break
    return assignment


def refinement_gain(graph: WeightedGraph, before: Mapping[int, int], after: Mapping[int, int]) -> float:
    """Cut-weight improvement achieved between two assignments (positive is better)."""
    return cut_weight(graph, before) - cut_weight(graph, after)
