"""Weighted undirected graph used by the partitioning algorithms.

The grouping algorithms operate on an *intensity graph* whose vertices are
edge switches and whose edge weights are the pairwise traffic intensities.
Vertices also carry weights (number of collapsed original switches) so the
multi-level scheme can respect the group-size limit while working on a
coarsened graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Tuple

from repro.common.errors import PartitioningError
from repro.datastructures.intensity import IntensityMatrix


@dataclass(slots=True)
class WeightedGraph:
    """Undirected graph with vertex weights and edge weights.

    Vertices are arbitrary hashable identifiers (switch ids at the finest
    level, synthetic integers at coarser levels).  Edges are stored as a
    nested adjacency mapping; the structure is kept symmetric at all times.
    """

    vertex_weights: Dict[int, float] = field(default_factory=dict)
    adjacency: Dict[int, Dict[int, float]] = field(default_factory=dict)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_intensity_matrix(cls, matrix: IntensityMatrix) -> "WeightedGraph":
        """Build the intensity graph for the switch-grouping problem.

        Every switch becomes a unit-weight vertex; every non-zero pairwise
        intensity becomes an edge with that weight.
        """
        graph = cls()
        for switch_id in matrix.switches():
            graph.add_vertex(switch_id, weight=1.0)
        for a, b, weight in matrix.pairs():
            graph.add_edge(a, b, weight)
        return graph

    def add_vertex(self, vertex: int, weight: float = 1.0) -> None:
        """Add a vertex (idempotent: re-adding keeps the larger weight)."""
        if weight <= 0:
            raise PartitioningError(f"vertex weight must be positive, got {weight}")
        current = self.vertex_weights.get(vertex)
        self.vertex_weights[vertex] = weight if current is None else max(current, weight)
        self.adjacency.setdefault(vertex, {})

    def add_edge(self, a: int, b: int, weight: float) -> None:
        """Add ``weight`` to the edge between ``a`` and ``b`` (self-loops ignored)."""
        if a == b:
            return
        if weight <= 0:
            return
        if a not in self.vertex_weights or b not in self.vertex_weights:
            raise PartitioningError("both endpoints must be added before the edge")
        self.adjacency[a][b] = self.adjacency[a].get(b, 0.0) + weight
        self.adjacency[b][a] = self.adjacency[b].get(a, 0.0) + weight

    # -- queries ----------------------------------------------------------

    def vertices(self) -> list[int]:
        """All vertex identifiers."""
        return list(self.vertex_weights)

    def vertex_count(self) -> int:
        """Number of vertices."""
        return len(self.vertex_weights)

    def edge_count(self) -> int:
        """Number of undirected edges."""
        return sum(len(neighbors) for neighbors in self.adjacency.values()) // 2

    def vertex_weight(self, vertex: int) -> float:
        """Weight of one vertex (number of collapsed original switches)."""
        return self.vertex_weights[vertex]

    def total_vertex_weight(self) -> float:
        """Sum of all vertex weights."""
        return sum(self.vertex_weights.values())

    def edge_weight(self, a: int, b: int) -> float:
        """Weight of the edge ``a``-``b`` (0 when absent)."""
        return self.adjacency.get(a, {}).get(b, 0.0)

    def neighbors(self, vertex: int) -> Dict[int, float]:
        """Adjacency map of ``vertex`` (neighbor -> edge weight)."""
        return self.adjacency.get(vertex, {})

    def degree(self, vertex: int) -> float:
        """Weighted degree of ``vertex``."""
        return sum(self.adjacency.get(vertex, {}).values())

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate each undirected edge exactly once as ``(a, b, weight)``."""
        for a, neighbors in self.adjacency.items():
            for b, weight in neighbors.items():
                if a < b:
                    yield a, b, weight

    def total_edge_weight(self) -> float:
        """Sum of all undirected edge weights."""
        return sum(weight for _, _, weight in self.edges())

    def subgraph(self, vertices: Iterable[int]) -> "WeightedGraph":
        """Return the induced subgraph on ``vertices`` (weights preserved)."""
        keep = set(vertices)
        result = WeightedGraph()
        for vertex in keep:
            if vertex not in self.vertex_weights:
                raise PartitioningError(f"unknown vertex {vertex} in subgraph request")
            result.add_vertex(vertex, self.vertex_weights[vertex])
        for a, b, weight in self.edges():
            if a in keep and b in keep:
                result.add_edge(a, b, weight)
        return result

    def copy(self) -> "WeightedGraph":
        """Deep copy of the graph."""
        duplicate = WeightedGraph()
        duplicate.vertex_weights = dict(self.vertex_weights)
        duplicate.adjacency = {vertex: dict(neighbors) for vertex, neighbors in self.adjacency.items()}
        return duplicate


def cut_weight(graph: WeightedGraph, assignment: Mapping[int, int]) -> float:
    """Total weight of edges whose endpoints are assigned to different parts."""
    total = 0.0
    for a, b, weight in graph.edges():
        if assignment.get(a) != assignment.get(b):
            total += weight
    return total


def partition_weights(graph: WeightedGraph, assignment: Mapping[int, int]) -> Dict[int, float]:
    """Total vertex weight of each part under ``assignment``."""
    weights: Dict[int, float] = {}
    for vertex, part in assignment.items():
        weights[part] = weights.get(part, 0.0) + graph.vertex_weight(vertex)
    return weights


def partition_sizes(assignment: Mapping[int, int]) -> Dict[int, int]:
    """Number of vertices in each part under ``assignment``."""
    sizes: Dict[int, int] = {}
    for part in assignment.values():
        sizes[part] = sizes.get(part, 0) + 1
    return sizes


def groups_from_assignment(assignment: Mapping[int, int]) -> list[set[int]]:
    """Convert a vertex->part mapping into a list of disjoint vertex sets."""
    buckets: Dict[int, set[int]] = {}
    for vertex, part in assignment.items():
        buckets.setdefault(part, set()).add(vertex)
    return [buckets[part] for part in sorted(buckets)]
