"""Size-constrained Multi-Level k-way Partitioning (MLkP).

This is the reproduction of the Karypis–Kumar multi-level scheme the paper
uses inside SGI's ``IniGroup``: coarsen the intensity graph with heavy-edge
matching, partition the coarsest graph with greedy region growing, then
uncoarsen level by level while running boundary refinement at each level.

The variant implemented here is *size-constrained*: every part must contain
at most ``max_part_weight`` original vertices (the group-size limit), which
is the exact difference between the switch-grouping problem and classical
k-way partitioning that §III-C.1 points out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.common.config import GroupingConfig
from repro.common.errors import InfeasibleGroupingError
from repro.common.rng import make_rng
from repro.partitioning.coarsening import coarsen, project_assignment
from repro.partitioning.graph import (
    WeightedGraph,
    cut_weight,
    groups_from_assignment,
    partition_weights,
)
from repro.partitioning.initial import balanced_random_assignment, greedy_region_growing
from repro.partitioning.refinement import refine


@dataclass(frozen=True, slots=True)
class PartitionResult:
    """Outcome of a k-way partitioning run."""

    assignment: Dict[int, int]
    cut_weight: float
    part_weights: Dict[int, float]
    parts: int
    levels: int

    def groups(self) -> list[set[int]]:
        """Return the partition as a list of disjoint vertex sets."""
        return groups_from_assignment(self.assignment)

    def max_part_weight(self) -> float:
        """Weight of the heaviest part (to verify the size constraint)."""
        return max(self.part_weights.values(), default=0.0)


class MultiLevelKWayPartitioner:
    """Multi-level k-way partitioner with a hard per-part weight limit."""

    def __init__(self, config: GroupingConfig | None = None) -> None:
        self._config = config or GroupingConfig()

    @property
    def config(self) -> GroupingConfig:
        """The grouping configuration in force."""
        return self._config

    def partition(
        self,
        graph: WeightedGraph,
        k: int,
        *,
        max_part_weight: float | None = None,
        seed_label: str = "mlkp",
    ) -> PartitionResult:
        """Partition ``graph`` into at most ``k`` parts.

        ``max_part_weight`` defaults to the configuration's group-size limit.
        The multi-level scheme is run ``restarts`` times with independent
        random streams and the lowest-cut feasible result is kept.  Raises
        :class:`InfeasibleGroupingError` when no feasible partition exists for
        the requested ``k`` and limit.
        """
        best: PartitionResult | None = None
        for restart in range(self._config.restarts):
            candidate = self._partition_once(
                graph, k, max_part_weight=max_part_weight, seed_label=f"{seed_label}/{restart}"
            )
            if best is None or candidate.cut_weight < best.cut_weight:
                best = candidate
        assert best is not None  # restarts >= 1 is enforced by the config
        return best

    def _partition_once(
        self,
        graph: WeightedGraph,
        k: int,
        *,
        max_part_weight: float | None,
        seed_label: str,
    ) -> PartitionResult:
        if k <= 0:
            raise InfeasibleGroupingError("k must be positive")
        limit = float(max_part_weight if max_part_weight is not None else self._config.group_size_limit)
        total_weight = graph.total_vertex_weight()
        if graph.vertex_count() == 0:
            return PartitionResult(assignment={}, cut_weight=0.0, part_weights={}, parts=k, levels=0)
        if total_weight > k * limit + 1e-9:
            raise InfeasibleGroupingError(
                f"{total_weight} total weight cannot fit into {k} parts of size {limit}"
            )
        rng = make_rng(self._config.random_seed, seed_label, str(k), str(graph.vertex_count()))

        # Phase 1: coarsening.  Coarse vertices never exceed the part limit so
        # the coarse partition remains projectable to a feasible fine one.
        levels = coarsen(
            graph,
            rng,
            target_vertex_count=max(self._config.coarsening_threshold, 4 * k),
            max_vertex_weight=limit,
        )
        coarsest = levels[-1].graph if levels else graph

        # Phase 2: initial partitioning on the coarsest graph.
        try:
            coarse_assignment = greedy_region_growing(coarsest, k, max_part_weight=limit, rng=rng)
        except InfeasibleGroupingError:
            # Region growing can paint itself into a corner on dense coarse
            # graphs; the weight-only first-fit fallback is always feasible
            # when a feasible partition exists at all.
            coarse_assignment = balanced_random_assignment(coarsest, k, max_part_weight=limit, rng=rng)
        refine(
            coarsest,
            coarse_assignment,
            max_part_weight=limit,
            parts=k,
            max_passes=self._config.refinement_passes,
        )

        # Phase 3: uncoarsening with refinement at every level.
        assignment = coarse_assignment
        for index in range(len(levels) - 1, -1, -1):
            finer_graph = levels[index - 1].graph if index > 0 else graph
            assignment = {
                fine_vertex: assignment[coarse_vertex]
                for fine_vertex, coarse_vertex in levels[index].fine_to_coarse.items()
            }
            refine(
                finer_graph,
                assignment,
                max_part_weight=limit,
                parts=k,
                max_passes=self._config.refinement_passes,
            )

        weights = partition_weights(graph, assignment)
        return PartitionResult(
            assignment=assignment,
            cut_weight=cut_weight(graph, assignment),
            part_weights=weights,
            parts=k,
            levels=len(levels),
        )


def verify_partition(
    graph: WeightedGraph,
    assignment: Mapping[int, int],
    *,
    max_part_weight: float,
) -> None:
    """Raise :class:`InfeasibleGroupingError` when the partition violates an invariant.

    Checks that every vertex is assigned and that no part exceeds the weight
    limit.  Used by tests and by SGI after incremental updates.
    """
    missing = [vertex for vertex in graph.vertices() if vertex not in assignment]
    if missing:
        raise InfeasibleGroupingError(f"{len(missing)} vertices are unassigned")
    weights = partition_weights(graph, assignment)
    for part, weight in weights.items():
        if weight > max_part_weight + 1e-9:
            raise InfeasibleGroupingError(
                f"part {part} has weight {weight}, exceeding the limit {max_part_weight}"
            )
