"""SGI — Size-constrained Grouping with Incremental update support.

This module implements the paper's switch-grouping algorithm (Fig. 3):

* ``IniGroup`` — build the intensity graph from history traffic statistics,
  estimate the number of groups ``k`` (switch count divided by the size
  limit) and run the size-constrained multi-level k-way partitioner.
* ``IncUpdate`` — while the controller is overloaded, pick the pair of
  groups between which traffic grew the most, merge them and split the merged
  group again with a size-constrained minimum bisection, so the two new
  groups exchange as little traffic as possible.  Refinement stops when the
  controller load drops below the low threshold (or no useful merge remains).

The module is deliberately independent of the control plane: it operates on
:class:`~repro.datastructures.intensity.IntensityMatrix` objects and returns
:class:`Grouping` values, so it can be benchmarked in isolation (Fig. 6) and
reused by the grouping manager in ``repro.controlplane``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import GroupingConfig
from repro.common.errors import InfeasibleGroupingError, PartitioningError
from repro.common.rng import make_rng
from repro.datastructures.intensity import IntensityMatrix
from repro.partitioning.graph import WeightedGraph
from repro.partitioning.bisection import min_bisection
from repro.partitioning.mlkp import MultiLevelKWayPartitioner, verify_partition


@dataclass(frozen=True, slots=True)
class Grouping:
    """A grouping of edge switches into Local Control Groups.

    ``groups`` maps a stable group identifier to the frozen set of member
    switch ids.  The identifiers survive incremental updates for groups that
    were not touched, which lets the control plane avoid re-provisioning
    unaffected groups.
    """

    groups: Dict[int, frozenset[int]]

    def group_of(self, switch_id: int) -> Optional[int]:
        """Return the group id containing ``switch_id`` (``None`` when ungrouped)."""
        for group_id, members in self.groups.items():
            if switch_id in members:
                return group_id
        return None

    def assignment(self) -> Dict[int, int]:
        """Return a switch-id -> group-id mapping."""
        result: Dict[int, int] = {}
        for group_id, members in self.groups.items():
            for switch_id in members:
                result[switch_id] = group_id
        return result

    def group_count(self) -> int:
        """Number of groups."""
        return len(self.groups)

    def switch_count(self) -> int:
        """Total number of grouped switches."""
        return sum(len(members) for members in self.groups.values())

    def largest_group_size(self) -> int:
        """Size of the largest group."""
        return max((len(members) for members in self.groups.values()), default=0)

    def sizes(self) -> List[int]:
        """Sizes of every group, sorted descending."""
        return sorted((len(members) for members in self.groups.values()), reverse=True)

    def as_sets(self) -> List[set[int]]:
        """Return the groups as plain sets (for intensity-matrix helpers)."""
        return [set(members) for members in self.groups.values()]


@dataclass(slots=True)
class SgiStatistics:
    """Counters describing the work SGI has performed so far."""

    initial_groupings: int = 0
    incremental_updates: int = 0
    merge_split_operations: int = 0
    last_initial_seconds: float = 0.0
    last_incremental_seconds: float = 0.0
    total_seconds: float = 0.0


@dataclass(frozen=True, slots=True)
class IncUpdateReport:
    """Result of one IncUpdate invocation."""

    grouping: Grouping
    merge_split_count: int
    inter_group_before: float
    inter_group_after: float
    elapsed_seconds: float

    @property
    def improved(self) -> bool:
        """Whether the update reduced the normalized inter-group intensity."""
        return self.inter_group_after < self.inter_group_before - 1e-12


class SgiGrouper:
    """The SGI algorithm: size-constrained initial grouping + incremental updates."""

    def __init__(self, config: GroupingConfig | None = None) -> None:
        self._config = config or GroupingConfig()
        self._partitioner = MultiLevelKWayPartitioner(self._config)
        self._next_group_id = 0
        self.statistics = SgiStatistics()

    @property
    def config(self) -> GroupingConfig:
        """The grouping configuration in force."""
        return self._config

    # -- IniGroup ---------------------------------------------------------

    def estimate_group_count(self, switch_count: int, *, group_size_limit: int | None = None) -> int:
        """Estimate ``k`` as the switch count divided by the size limit (paper §III-C.2)."""
        limit = group_size_limit or self._config.group_size_limit
        if switch_count <= 0:
            return 0
        return max(1, math.ceil(switch_count / limit))

    def initial_grouping(
        self,
        matrix: IntensityMatrix,
        *,
        group_count: int | None = None,
        group_size_limit: int | None = None,
    ) -> Grouping:
        """Run ``IniGroup``: build the intensity graph and partition it.

        ``group_count`` defaults to the estimate from the size limit; a larger
        value may be passed to study the trade-off of Fig. 6(a).
        """
        started = time.perf_counter()
        limit = group_size_limit or self._config.group_size_limit
        switches = matrix.switches()
        if not switches:
            return Grouping(groups={})
        k = group_count if group_count is not None else self.estimate_group_count(len(switches), group_size_limit=limit)
        if k * limit < len(switches):
            raise InfeasibleGroupingError(
                f"{len(switches)} switches cannot fit into {k} groups of size {limit}"
            )
        graph = WeightedGraph.from_intensity_matrix(matrix)
        result = self._partitioner.partition(graph, k, max_part_weight=float(limit))
        verify_partition(graph, result.assignment, max_part_weight=float(limit))
        groups: Dict[int, frozenset[int]] = {}
        for members in result.groups():
            if not members:
                continue
            groups[self._allocate_group_id()] = frozenset(members)
        elapsed = time.perf_counter() - started
        self.statistics.initial_groupings += 1
        self.statistics.last_initial_seconds = elapsed
        self.statistics.total_seconds += elapsed
        return Grouping(groups=groups)

    # -- IncUpdate --------------------------------------------------------

    def incremental_update(
        self,
        grouping: Grouping,
        history_matrix: IntensityMatrix,
        recent_matrix: IntensityMatrix,
        *,
        group_size_limit: int | None = None,
        max_merge_splits: int = 8,
        stop_when_intensity_below: float | None = None,
    ) -> IncUpdateReport:
        """Run ``IncUpdate``: repeatedly merge and re-split the worst group pair.

        ``history_matrix`` carries the long-term affinity used to evaluate the
        overall grouping quality; ``recent_matrix`` carries the most recent
        measurement window, which determines *which* pair of groups changed
        the most.  ``stop_when_intensity_below`` plays the role of the
        controller's low-load threshold: refinement stops once the normalized
        inter-group intensity (on the combined view) drops below it.
        """
        started = time.perf_counter()
        limit = float(group_size_limit or self._config.group_size_limit)
        combined = history_matrix.copy()
        combined.merge(recent_matrix)

        current = {group_id: set(members) for group_id, members in grouping.groups.items()}
        before = combined.normalized_inter_group_intensity(list(current.values()))
        merge_splits = 0
        rng = make_rng(self._config.random_seed, "incupdate", str(self.statistics.incremental_updates))

        attempted_pairs: set[Tuple[int, int]] = set()
        for _ in range(max_merge_splits):
            now_intensity = combined.normalized_inter_group_intensity(list(current.values()))
            if stop_when_intensity_below is not None and now_intensity <= stop_when_intensity_below:
                break
            pair = self._find_candidate_pair(current, recent_matrix, combined, limit, attempted_pairs)
            if pair is None:
                break
            group_a, group_b = pair
            attempted_pairs.add(pair)
            merged_members = current[group_a] | current[group_b]
            subgraph = WeightedGraph.from_intensity_matrix(combined).subgraph(merged_members) \
                if self._all_known(combined, merged_members) else self._build_subgraph(combined, merged_members)
            try:
                bisection = min_bisection(subgraph, max_side_weight=limit, rng=rng)
            except (InfeasibleGroupingError, PartitioningError):
                continue
            # Replace the two old groups only if the split does not make the
            # grouping worse on the combined view.
            candidate = {gid: members for gid, members in current.items() if gid not in (group_a, group_b)}
            candidate[group_a] = set(bisection.side_a)
            candidate[group_b] = set(bisection.side_b)
            candidate_intensity = combined.normalized_inter_group_intensity(list(candidate.values()))
            if candidate_intensity <= now_intensity + 1e-12:
                current = candidate
                merge_splits += 1

        after = combined.normalized_inter_group_intensity(list(current.values()))
        elapsed = time.perf_counter() - started
        self.statistics.incremental_updates += 1
        self.statistics.merge_split_operations += merge_splits
        self.statistics.last_incremental_seconds = elapsed
        self.statistics.total_seconds += elapsed
        new_grouping = Grouping(groups={gid: frozenset(members) for gid, members in current.items() if members})
        return IncUpdateReport(
            grouping=new_grouping,
            merge_split_count=merge_splits,
            inter_group_before=before,
            inter_group_after=after,
            elapsed_seconds=elapsed,
        )

    # -- helpers ----------------------------------------------------------

    def _allocate_group_id(self) -> int:
        group_id = self._next_group_id
        self._next_group_id += 1
        return group_id

    @staticmethod
    def _all_known(matrix: IntensityMatrix, members: set[int]) -> bool:
        known = set(matrix.switches())
        return members <= known

    @staticmethod
    def _build_subgraph(matrix: IntensityMatrix, members: set[int]) -> WeightedGraph:
        """Build an intensity subgraph that tolerates switches unseen by the matrix."""
        graph = WeightedGraph()
        for switch_id in members:
            graph.add_vertex(switch_id, 1.0)
        for a, b, weight in matrix.pairs():
            if a in members and b in members:
                graph.add_edge(a, b, weight)
        return graph

    def _find_candidate_pair(
        self,
        current: Dict[int, set[int]],
        recent_matrix: IntensityMatrix,
        combined_matrix: IntensityMatrix,
        limit: float,
        attempted: set[Tuple[int, int]],
    ) -> Optional[Tuple[int, int]]:
        """Pick the pair of groups with the most significant recent inter-group traffic.

        Only pairs whose combined size fits within twice the group limit are
        eligible (otherwise no feasible re-split exists).  Pairs already
        attempted in this invocation are skipped so the loop terminates.
        """
        group_ids = sorted(current)
        best_pair: Optional[Tuple[int, int]] = None
        best_score = 0.0
        for index, group_a in enumerate(group_ids):
            for group_b in group_ids[index + 1 :]:
                key = (group_a, group_b)
                if key in attempted:
                    continue
                if len(current[group_a]) + len(current[group_b]) > 2 * limit + 1e-9:
                    continue
                recent = self._pairwise_intensity(recent_matrix, current[group_a], current[group_b])
                fallback = self._pairwise_intensity(combined_matrix, current[group_a], current[group_b])
                score = recent if recent > 0 else 0.5 * fallback
                if score > best_score + 1e-12:
                    best_score = score
                    best_pair = key
        return best_pair

    @staticmethod
    def _pairwise_intensity(matrix: IntensityMatrix, group_a: set[int], group_b: set[int]) -> float:
        total = 0.0
        for a, b, weight in matrix.pairs():
            if (a in group_a and b in group_b) or (a in group_b and b in group_a):
                total += weight
        return total


def grouping_quality(matrix: IntensityMatrix, grouping: Grouping) -> float:
    """Normalized inter-group intensity of ``grouping`` under ``matrix`` (lower is better)."""
    return matrix.normalized_inter_group_intensity(grouping.as_sets())


def average_group_centrality(matrix: IntensityMatrix, grouping: Grouping) -> float:
    """Mean *centrality* across groups as defined in the paper's motivation section.

    The centrality of a group is the ratio of intra-group traffic to the
    total traffic involving any member of the group.  Groups with no traffic
    at all are skipped.
    """
    centralities: List[float] = []
    for members in grouping.as_sets():
        intra = 0.0
        related = 0.0
        for a, b, weight in matrix.pairs():
            a_in = a in members
            b_in = b in members
            if a_in and b_in:
                intra += weight
                related += weight
            elif a_in or b_in:
                related += weight
        if related > 0:
            centralities.append(intra / related)
    if not centralities:
        return 0.0
    return sum(centralities) / len(centralities)
