"""Stoer–Wagner global minimum cut.

SGI's incremental update merges the two groups whose mutual traffic grew the
most and then splits the merged group again so the cut between the two new
groups is minimal.  The paper cites Stoer & Wagner's simple min-cut algorithm
for this step; we provide a faithful implementation operating on
:class:`~repro.partitioning.graph.WeightedGraph`.

The algorithm runs ``n - 1`` *minimum cut phases*.  Each phase performs a
maximum-adjacency search, records the "cut of the phase" (weight of the last
vertex added), and contracts the last two vertices.  The lightest cut of any
phase is a global minimum cut.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set

from repro.common.errors import PartitioningError
from repro.partitioning.graph import WeightedGraph


@dataclass(frozen=True, slots=True)
class MinCutResult:
    """A global minimum cut: its weight and one side of the bipartition."""

    weight: float
    partition: FrozenSet[int]

    def other_side(self, all_vertices: Set[int]) -> FrozenSet[int]:
        """The complementary side of the cut."""
        return frozenset(all_vertices - self.partition)


def stoer_wagner_min_cut(graph: WeightedGraph) -> MinCutResult:
    """Compute a global minimum cut of ``graph``.

    Raises :class:`PartitioningError` on graphs with fewer than two vertices.
    Disconnected graphs return a zero-weight cut separating one connected
    component from the rest.
    """
    vertices = graph.vertices()
    if len(vertices) < 2:
        raise PartitioningError("minimum cut requires at least two vertices")

    # Work on a contracted adjacency copy; "merged[v]" tracks which original
    # vertices the super-vertex v currently represents.
    adjacency: Dict[int, Dict[int, float]] = {
        vertex: dict(graph.neighbors(vertex)) for vertex in vertices
    }
    merged: Dict[int, Set[int]] = {vertex: {vertex} for vertex in vertices}

    best_weight = float("inf")
    best_partition: Set[int] = set()

    active = list(vertices)
    while len(active) > 1:
        # Maximum adjacency search from an arbitrary start vertex.
        start = active[0]
        in_a: List[int] = [start]
        in_a_set = {start}
        connectivity: Dict[int, float] = {
            vertex: adjacency[start].get(vertex, 0.0) for vertex in active if vertex != start
        }
        while len(in_a) < len(active):
            next_vertex = max(connectivity, key=lambda vertex: connectivity[vertex])
            in_a.append(next_vertex)
            in_a_set.add(next_vertex)
            del connectivity[next_vertex]
            for neighbor, weight in adjacency[next_vertex].items():
                if neighbor in connectivity:
                    connectivity[neighbor] += weight
        last = in_a[-1]
        second_last = in_a[-2]
        cut_of_phase = sum(adjacency[last].values())
        if cut_of_phase < best_weight:
            best_weight = cut_of_phase
            best_partition = set(merged[last])

        # Contract `last` into `second_last`.
        merged[second_last] |= merged[last]
        for neighbor, weight in adjacency[last].items():
            if neighbor == second_last:
                continue
            adjacency[second_last][neighbor] = adjacency[second_last].get(neighbor, 0.0) + weight
            adjacency[neighbor][second_last] = adjacency[neighbor].get(second_last, 0.0) + weight
        for neighbor in adjacency[last]:
            adjacency[neighbor].pop(last, None)
        del adjacency[last]
        del merged[last]
        active.remove(last)

    return MinCutResult(weight=best_weight, partition=frozenset(best_partition))
