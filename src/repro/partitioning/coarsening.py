"""Graph coarsening via heavy-edge matching.

The multi-level k-way partitioning scheme (Karypis & Kumar) first shrinks the
graph by repeatedly collapsing matched vertex pairs.  We implement the
standard *heavy-edge matching* heuristic: visit vertices in random order and
match each unmatched vertex with the unmatched neighbour connected by the
heaviest edge.  Collapsed vertices accumulate vertex weight and their edges
are merged, preserving cut weights between coarse vertices.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.partitioning.graph import WeightedGraph


@dataclass(slots=True)
class CoarseningLevel:
    """One level of the coarsening hierarchy.

    ``fine_to_coarse`` maps every vertex of the finer graph to its coarse
    vertex; ``graph`` is the coarse graph itself.
    """

    graph: WeightedGraph
    fine_to_coarse: Dict[int, int]


def heavy_edge_matching(graph: WeightedGraph, rng: random.Random, *, max_vertex_weight: float | None = None) -> Dict[int, int]:
    """Compute a heavy-edge matching of ``graph``.

    Returns a mapping from each vertex to its match partner; unmatched
    vertices map to themselves.  ``max_vertex_weight`` prevents creating
    coarse vertices heavier than the group-size limit, which would make the
    final size-constrained partition infeasible.
    """
    order = list(graph.vertices())
    rng.shuffle(order)
    matched: Dict[int, int] = {}
    for vertex in order:
        if vertex in matched:
            continue
        best_partner = None
        best_weight = 0.0
        for neighbor, weight in graph.neighbors(vertex).items():
            if neighbor in matched:
                continue
            if max_vertex_weight is not None:
                combined = graph.vertex_weight(vertex) + graph.vertex_weight(neighbor)
                if combined > max_vertex_weight:
                    continue
            if weight > best_weight:
                best_weight = weight
                best_partner = neighbor
        if best_partner is None:
            matched[vertex] = vertex
        else:
            matched[vertex] = best_partner
            matched[best_partner] = vertex
    return matched


def contract(graph: WeightedGraph, matching: Dict[int, int]) -> CoarseningLevel:
    """Collapse each matched pair into one coarse vertex.

    Coarse vertices are numbered densely from 0; the returned level records
    the projection from fine to coarse vertices so refinement can later be
    projected back.
    """
    coarse = WeightedGraph()
    fine_to_coarse: Dict[int, int] = {}
    next_id = 0
    for vertex in graph.vertices():
        if vertex in fine_to_coarse:
            continue
        partner = matching.get(vertex, vertex)
        coarse_id = next_id
        next_id += 1
        fine_to_coarse[vertex] = coarse_id
        weight = graph.vertex_weight(vertex)
        if partner != vertex and partner not in fine_to_coarse:
            fine_to_coarse[partner] = coarse_id
            weight += graph.vertex_weight(partner)
        coarse.add_vertex(coarse_id, weight)
    for a, b, weight in graph.edges():
        ca, cb = fine_to_coarse[a], fine_to_coarse[b]
        if ca != cb:
            coarse.add_edge(ca, cb, weight)
    return CoarseningLevel(graph=coarse, fine_to_coarse=fine_to_coarse)


def coarsen(
    graph: WeightedGraph,
    rng: random.Random,
    *,
    target_vertex_count: int,
    max_vertex_weight: float | None = None,
    max_levels: int = 30,
) -> List[CoarseningLevel]:
    """Repeatedly contract ``graph`` until it has at most ``target_vertex_count`` vertices.

    Returns the list of coarsening levels from finest to coarsest.  Stops
    early when a matching pass fails to shrink the graph by at least 5 %
    (typical for graphs that are already star-like), which bounds the number
    of levels even on adversarial inputs.
    """
    levels: List[CoarseningLevel] = []
    current = graph
    for _ in range(max_levels):
        if current.vertex_count() <= target_vertex_count:
            break
        matching = heavy_edge_matching(current, rng, max_vertex_weight=max_vertex_weight)
        level = contract(current, matching)
        if level.graph.vertex_count() >= current.vertex_count() * 0.95:
            break
        levels.append(level)
        current = level.graph
    return levels


def project_assignment(levels: List[CoarseningLevel], coarse_assignment: Dict[int, int]) -> Dict[int, int]:
    """Project a partition of the coarsest graph back to the original vertices."""
    assignment = dict(coarse_assignment)
    for level in reversed(levels):
        finer: Dict[int, int] = {}
        for fine_vertex, coarse_vertex in level.fine_to_coarse.items():
            finer[fine_vertex] = assignment[coarse_vertex]
        assignment = finer
    return assignment
