"""Size-constrained minimum bisection used by SGI's merge-and-split step.

SGI's ``IncUpdate`` merges the two groups whose mutual traffic increased the
most and splits the combined group into two new groups with minimum
communication between them (paper §III-C.2).  A plain Stoer–Wagner minimum
cut can be wildly unbalanced (it frequently peels off a single vertex), which
would violate the group-size limit, so this module provides a *size-aware*
bisection:

1. seed two sides from the Stoer–Wagner cut when it is feasible, otherwise
   from the two heaviest-degree vertices;
2. greedily assign remaining vertices to the side with the strongest
   attraction that still has room;
3. run a constrained Kernighan–Lin style swap/move refinement to reduce the
   cut while keeping both sides under the size limit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Set, Tuple

from repro.common.errors import InfeasibleGroupingError
from repro.partitioning.graph import WeightedGraph
from repro.partitioning.stoer_wagner import stoer_wagner_min_cut


@dataclass(frozen=True, slots=True)
class BisectionResult:
    """A two-way split of a vertex set and the weight of the cut between the sides."""

    side_a: frozenset[int]
    side_b: frozenset[int]
    cut_weight: float


def _cut_between(graph: WeightedGraph, side_a: Set[int], side_b: Set[int]) -> float:
    total = 0.0
    for vertex in side_a:
        for neighbor, weight in graph.neighbors(vertex).items():
            if neighbor in side_b:
                total += weight
    return total


def _side_weight(graph: WeightedGraph, side: Set[int]) -> float:
    return sum(graph.vertex_weight(vertex) for vertex in side)


def _greedy_fill(
    graph: WeightedGraph,
    seeds_a: Set[int],
    seeds_b: Set[int],
    max_side_weight: float,
    rng: random.Random,
) -> Tuple[Set[int], Set[int]]:
    """Assign all unseeded vertices to one of the two sides under the limit."""
    side_a, side_b = set(seeds_a), set(seeds_b)
    weight_a = _side_weight(graph, side_a)
    weight_b = _side_weight(graph, side_b)
    remaining = [v for v in graph.vertices() if v not in side_a and v not in side_b]
    # Heavier-connected vertices first so their preference is honoured while
    # there is still slack on both sides.
    remaining.sort(key=lambda v: (-graph.degree(v), rng.random()))
    for vertex in remaining:
        vertex_weight = graph.vertex_weight(vertex)
        attraction_a = sum(w for n, w in graph.neighbors(vertex).items() if n in side_a)
        attraction_b = sum(w for n, w in graph.neighbors(vertex).items() if n in side_b)
        fits_a = weight_a + vertex_weight <= max_side_weight + 1e-9
        fits_b = weight_b + vertex_weight <= max_side_weight + 1e-9
        if not fits_a and not fits_b:
            raise InfeasibleGroupingError(
                "cannot bisect: both sides would exceed the group size limit"
            )
        prefer_a = attraction_a > attraction_b or (attraction_a == attraction_b and weight_a <= weight_b)
        if (prefer_a and fits_a) or not fits_b:
            side_a.add(vertex)
            weight_a += vertex_weight
        else:
            side_b.add(vertex)
            weight_b += vertex_weight
    return side_a, side_b


def _refine_sides(
    graph: WeightedGraph,
    side_a: Set[int],
    side_b: Set[int],
    max_side_weight: float,
    max_passes: int = 6,
) -> None:
    """Constrained boundary refinement: move vertices across the cut while it helps."""
    for _ in range(max_passes):
        improved = False
        weight_a = _side_weight(graph, side_a)
        weight_b = _side_weight(graph, side_b)
        for vertex in list(side_a | side_b):
            in_a = vertex in side_a
            source, target = (side_a, side_b) if in_a else (side_b, side_a)
            target_weight = weight_b if in_a else weight_a
            vertex_weight = graph.vertex_weight(vertex)
            if len(source) <= 1:
                continue
            if target_weight + vertex_weight > max_side_weight + 1e-9:
                continue
            internal = sum(w for n, w in graph.neighbors(vertex).items() if n in source)
            external = sum(w for n, w in graph.neighbors(vertex).items() if n in target)
            if external - internal <= 1e-12:
                continue
            source.discard(vertex)
            target.add(vertex)
            if in_a:
                weight_a -= vertex_weight
                weight_b += vertex_weight
            else:
                weight_b -= vertex_weight
                weight_a += vertex_weight
            improved = True
        if not improved:
            break


def min_bisection(
    graph: WeightedGraph,
    *,
    max_side_weight: float,
    rng: random.Random,
) -> BisectionResult:
    """Split ``graph`` into two sides of weight at most ``max_side_weight`` each.

    The cut between the two sides is greedily minimized.  Raises
    :class:`InfeasibleGroupingError` when the vertex weights cannot be packed
    into two sides under the limit.
    """
    vertices = graph.vertices()
    if len(vertices) < 2:
        raise InfeasibleGroupingError("bisection requires at least two vertices")
    total_weight = graph.total_vertex_weight()
    if total_weight > 2 * max_side_weight + 1e-9:
        raise InfeasibleGroupingError(
            f"total weight {total_weight} cannot fit into two sides of {max_side_weight}"
        )

    # Try to seed from the global minimum cut when both sides are feasible.
    seeds_a: Set[int] = set()
    seeds_b: Set[int] = set()
    if graph.edge_count() > 0:
        cut = stoer_wagner_min_cut(graph)
        candidate_a = set(cut.partition)
        candidate_b = set(vertices) - candidate_a
        if (
            candidate_a
            and candidate_b
            and _side_weight(graph, candidate_a) <= max_side_weight + 1e-9
            and _side_weight(graph, candidate_b) <= max_side_weight + 1e-9
        ):
            side_a, side_b = candidate_a, candidate_b
            _refine_sides(graph, side_a, side_b, max_side_weight)
            return BisectionResult(
                side_a=frozenset(side_a),
                side_b=frozenset(side_b),
                cut_weight=_cut_between(graph, side_a, side_b),
            )
        # Infeasible global cut: keep its heaviest vertex on each side as seeds.
        if candidate_a and candidate_b:
            seeds_a = {max(candidate_a, key=graph.vertex_weight)}
            seeds_b = {max(candidate_b, key=graph.vertex_weight)}

    if not seeds_a or not seeds_b:
        by_degree = sorted(vertices, key=lambda v: -graph.degree(v))
        seeds_a = {by_degree[0]}
        seeds_b = {by_degree[1]}

    side_a, side_b = _greedy_fill(graph, seeds_a, seeds_b, max_side_weight, rng)
    _refine_sides(graph, side_a, side_b, max_side_weight)
    return BisectionResult(
        side_a=frozenset(side_a),
        side_b=frozenset(side_b),
        cut_weight=_cut_between(graph, side_a, side_b),
    )
