"""Initial k-way partitioning of the coarsest graph.

The multi-level scheme only needs a reasonable starting partition on the
small coarsened graph; refinement does the heavy lifting afterwards.  We use
greedy region growing: seed ``k`` parts with the heaviest-degree unassigned
vertices, then repeatedly attach the unassigned vertex with the strongest
connection to the lightest non-full part.  The size constraint (maximum
vertex weight per part) is respected throughout so the projected partition is
feasible by construction.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.common.errors import InfeasibleGroupingError
from repro.partitioning.graph import WeightedGraph


def greedy_region_growing(
    graph: WeightedGraph,
    k: int,
    *,
    max_part_weight: float,
    rng: random.Random,
) -> Dict[int, int]:
    """Produce an initial assignment of every vertex to one of ``k`` parts.

    Raises :class:`InfeasibleGroupingError` when the vertices cannot fit into
    ``k`` parts of weight at most ``max_part_weight`` (e.g. a single coarse
    vertex is heavier than the limit).
    """
    if k <= 0:
        raise InfeasibleGroupingError("number of parts must be positive")
    vertices = graph.vertices()
    if not vertices:
        return {}
    total_weight = graph.total_vertex_weight()
    if total_weight > k * max_part_weight + 1e-9:
        raise InfeasibleGroupingError(
            f"total vertex weight {total_weight} cannot fit into {k} parts of {max_part_weight}"
        )
    heaviest = max(graph.vertex_weight(v) for v in vertices)
    if heaviest > max_part_weight + 1e-9:
        raise InfeasibleGroupingError(
            f"a vertex of weight {heaviest} exceeds the part weight limit {max_part_weight}"
        )

    assignment: Dict[int, int] = {}
    part_weight = [0.0] * k

    # Seed each part with a high-degree vertex to spread the parts across the
    # graph; ties broken randomly for diversification across runs.
    seeds = sorted(vertices, key=lambda v: (-graph.degree(v), rng.random()))
    seed_iter = iter(seeds)
    for part in range(k):
        for candidate in seed_iter:
            if candidate in assignment:
                continue
            if graph.vertex_weight(candidate) <= max_part_weight:
                assignment[candidate] = part
                part_weight[part] += graph.vertex_weight(candidate)
                break
        else:
            break  # fewer vertices than parts; remaining parts stay empty

    unassigned = [v for v in vertices if v not in assignment]
    rng.shuffle(unassigned)

    # Grow parts greedily: each unassigned vertex joins the feasible part to
    # which it has the strongest connectivity, falling back to the lightest
    # feasible part when it has no assigned neighbours yet.
    pending = list(unassigned)
    while pending:
        progressed = False
        still_pending = []
        for vertex in pending:
            weight = graph.vertex_weight(vertex)
            gains = [0.0] * k
            for neighbor, edge_weight in graph.neighbors(vertex).items():
                part = assignment.get(neighbor)
                if part is not None:
                    gains[part] += edge_weight
            candidates = [
                part for part in range(k) if part_weight[part] + weight <= max_part_weight + 1e-9
            ]
            if not candidates:
                still_pending.append(vertex)
                continue
            best = max(candidates, key=lambda part: (gains[part], -part_weight[part]))
            assignment[vertex] = best
            part_weight[best] += weight
            progressed = True
        if not progressed and still_pending:
            raise InfeasibleGroupingError(
                "could not place all vertices under the part weight limit; "
                f"{len(still_pending)} vertices left over"
            )
        pending = still_pending
    return assignment


def balanced_random_assignment(
    graph: WeightedGraph,
    k: int,
    *,
    max_part_weight: float,
    rng: random.Random,
) -> Dict[int, int]:
    """Fallback initial partition ignoring edge weights (used in tests/fuzzing).

    Vertices are shuffled and placed first-fit-decreasing by weight into the
    lightest feasible part.
    """
    if k <= 0:
        raise InfeasibleGroupingError("number of parts must be positive")
    assignment: Dict[int, int] = {}
    part_weight = [0.0] * k
    vertices = sorted(graph.vertices(), key=lambda v: (-graph.vertex_weight(v), rng.random()))
    for vertex in vertices:
        weight = graph.vertex_weight(vertex)
        candidates = [part for part in range(k) if part_weight[part] + weight <= max_part_weight + 1e-9]
        if not candidates:
            raise InfeasibleGroupingError("vertices do not fit under the part weight limit")
        best = min(candidates, key=lambda part: part_weight[part])
        assignment[vertex] = best
        part_weight[best] += weight
    return assignment
