"""Graph partitioning: MLkP, min-cut/min-bisection and the SGI grouping algorithm."""

from repro.partitioning.bisection import BisectionResult, min_bisection
from repro.partitioning.coarsening import (
    CoarseningLevel,
    coarsen,
    contract,
    heavy_edge_matching,
    project_assignment,
)
from repro.partitioning.graph import (
    WeightedGraph,
    cut_weight,
    groups_from_assignment,
    partition_sizes,
    partition_weights,
)
from repro.partitioning.initial import balanced_random_assignment, greedy_region_growing
from repro.partitioning.mlkp import MultiLevelKWayPartitioner, PartitionResult, verify_partition
from repro.partitioning.refinement import refine, refine_once, refinement_gain
from repro.partitioning.sgi import (
    Grouping,
    IncUpdateReport,
    SgiGrouper,
    SgiStatistics,
    average_group_centrality,
    grouping_quality,
)
from repro.partitioning.stoer_wagner import MinCutResult, stoer_wagner_min_cut

__all__ = [
    "BisectionResult",
    "CoarseningLevel",
    "Grouping",
    "IncUpdateReport",
    "MinCutResult",
    "MultiLevelKWayPartitioner",
    "PartitionResult",
    "SgiGrouper",
    "SgiStatistics",
    "WeightedGraph",
    "average_group_centrality",
    "balanced_random_assignment",
    "coarsen",
    "contract",
    "cut_weight",
    "greedy_region_growing",
    "grouping_quality",
    "groups_from_assignment",
    "heavy_edge_matching",
    "min_bisection",
    "partition_sizes",
    "partition_weights",
    "project_assignment",
    "refine",
    "refine_once",
    "refinement_gain",
    "stoer_wagner_min_cut",
    "verify_partition",
]
