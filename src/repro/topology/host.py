"""Hosts (virtual machines) attached to edge switches."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.addresses import MacAddress


@dataclass(frozen=True, slots=True)
class Host:
    """A virtual machine attached to an edge switch.

    Attributes
    ----------
    host_id:
        Dense integer identifier (index into the data center's host list).
    mac:
        Layer-2 address of the VM, the key used by every forwarding table.
    tenant_id:
        The tenant (VLAN) owning the VM.
    switch_id:
        The edge switch the VM is currently attached to.
    port:
        Local port on that switch.
    """

    host_id: int
    mac: MacAddress
    tenant_id: int
    switch_id: int
    port: int

    def migrated_to(self, switch_id: int, port: int) -> "Host":
        """Return a copy of this host after migration to another switch/port."""
        return replace(self, switch_id=switch_id, port=port)
