"""Topology and tenancy: hosts, tenants, edge switches and the data-center model."""

from repro.topology.builder import (
    TopologyProfile,
    build_multi_tenant_datacenter,
    build_paper_real_topology,
    build_paper_synthetic_topology,
)
from repro.topology.host import Host
from repro.topology.network import DataCenterNetwork, EdgeSwitchInfo
from repro.topology.tenant import Tenant, TenantDirectory

__all__ = [
    "DataCenterNetwork",
    "EdgeSwitchInfo",
    "Host",
    "Tenant",
    "TenantDirectory",
    "TopologyProfile",
    "build_multi_tenant_datacenter",
    "build_paper_real_topology",
    "build_paper_synthetic_topology",
]
