"""Topology and tenancy: hosts, tenants, edge switches, shapes and the registry."""

from repro.topology.builder import (
    PaperRealTopologyParams,
    PaperSyntheticTopologyParams,
    TopologyProfile,
    build_multi_tenant_datacenter,
    build_paper_real_topology,
    build_paper_synthetic_topology,
)
from repro.topology.host import Host
from repro.topology.network import DataCenterNetwork, EdgeSwitchInfo
from repro.topology.registry import (
    TopologyEntry,
    available_topologies,
    get_topology,
    register_topology,
    unregister_topology,
)
from repro.topology.shapes import (
    MultiPodTopologyParams,
    StripedTopologyParams,
    build_multi_pod_datacenter,
    build_striped_datacenter,
)
from repro.topology.tenant import Tenant, TenantDirectory

__all__ = [
    "DataCenterNetwork",
    "EdgeSwitchInfo",
    "Host",
    "MultiPodTopologyParams",
    "PaperRealTopologyParams",
    "PaperSyntheticTopologyParams",
    "StripedTopologyParams",
    "Tenant",
    "TenantDirectory",
    "TopologyEntry",
    "TopologyProfile",
    "available_topologies",
    "build_multi_pod_datacenter",
    "build_multi_tenant_datacenter",
    "build_paper_real_topology",
    "build_paper_synthetic_topology",
    "build_striped_datacenter",
    "get_topology",
    "register_topology",
    "unregister_topology",
]
