"""Topology shapes beyond the home-switch multi-tenant builder.

Two placement disciplines that bracket the locality spectrum the paper's
Table II varies:

* **striped** — anti-local placement: each tenant's VMs are striped
  round-robin across *all* edge switches, so intra-tenant traffic is almost
  always inter-switch and spread evenly.  This is the adversarial layout
  that defeats switch grouping — the workload a LazyCtrl deployment must
  not fall over on;
* **multi-pod** — hierarchical locality: switches are organized into pods
  and each tenant is confined to home switches inside one home pod (with a
  small spill fraction anywhere), producing two nested tiers of locality
  for the grouping to discover.

Both builders are deterministic given their seed and are registered in
:mod:`repro.topology.registry` next to the existing builders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng
from repro.topology.builder import _assign_uplink_capacities
from repro.topology.network import DataCenterNetwork


@dataclass(frozen=True, slots=True)
class StripedTopologyParams:
    """Parameters of the anti-local striped topology."""

    switch_count: int = 32
    host_count: int = 400
    min_tenant_size: int = 20
    max_tenant_size: int = 100
    uplink_mbps: Optional[float] = None
    seed: int = 2015

    def __post_init__(self) -> None:
        if self.switch_count <= 0:
            raise ConfigurationError("switch_count must be positive")
        if self.host_count <= 0:
            raise ConfigurationError("host_count must be positive")
        if not 1 <= self.min_tenant_size <= self.max_tenant_size:
            raise ConfigurationError("tenant size bounds must satisfy 1 <= min <= max")
        if self.uplink_mbps is not None and self.uplink_mbps <= 0:
            raise ConfigurationError("uplink_mbps must be positive when set")


def build_striped_datacenter(params: StripedTopologyParams) -> DataCenterNetwork:
    """Stripe every tenant's VMs round-robin across all switches (anti-local)."""
    rng = make_rng(params.seed, "topology-striped")
    network = DataCenterNetwork()
    for _ in range(params.switch_count):
        network.add_edge_switch()

    switch_ids = network.switch_ids()
    created_hosts = 0
    tenant_index = 0
    while created_hosts < params.host_count:
        remaining = params.host_count - created_hosts
        size = min(rng.randint(params.min_tenant_size, params.max_tenant_size), remaining)
        tenant = network.tenants.create_tenant(f"tenant-{tenant_index:04d}")
        # A rotating start offset keeps overall switch load even while each
        # tenant still touches as many distinct switches as it has VMs.
        offset = rng.randrange(len(switch_ids))
        for vm_index in range(size):
            switch_id = switch_ids[(offset + vm_index) % len(switch_ids)]
            network.attach_host(switch_id, tenant.tenant_id)
            created_hosts += 1
        tenant_index += 1
    _assign_uplink_capacities(network, params.uplink_mbps)
    return network


@dataclass(frozen=True, slots=True)
class MultiPodTopologyParams:
    """Parameters of the hierarchical multi-pod topology."""

    pod_count: int = 4
    switches_per_pod: int = 8
    host_count: int = 480
    min_tenant_size: int = 20
    max_tenant_size: int = 100
    home_switches_per_tenant: int = 2
    pod_spill_fraction: float = 0.03
    uplink_mbps: Optional[float] = None
    seed: int = 2015

    def __post_init__(self) -> None:
        if self.pod_count <= 0:
            raise ConfigurationError("pod_count must be positive")
        if self.switches_per_pod <= 0:
            raise ConfigurationError("switches_per_pod must be positive")
        if self.host_count <= 0:
            raise ConfigurationError("host_count must be positive")
        if not 1 <= self.min_tenant_size <= self.max_tenant_size:
            raise ConfigurationError("tenant size bounds must satisfy 1 <= min <= max")
        if self.home_switches_per_tenant < 1:
            raise ConfigurationError("home_switches_per_tenant must be at least 1")
        if not 0.0 <= self.pod_spill_fraction <= 1.0:
            raise ConfigurationError("pod_spill_fraction must be in [0, 1]")
        if self.uplink_mbps is not None and self.uplink_mbps <= 0:
            raise ConfigurationError("uplink_mbps must be positive when set")

    @property
    def switch_count(self) -> int:
        """Total number of edge switches across all pods."""
        return self.pod_count * self.switches_per_pod


def build_multi_pod_datacenter(params: MultiPodTopologyParams) -> DataCenterNetwork:
    """Confine each tenant to home switches inside one home pod."""
    rng = make_rng(params.seed, "topology-multi-pod")
    network = DataCenterNetwork()
    pods = []
    for _ in range(params.pod_count):
        pods.append(
            [network.add_edge_switch().switch_id for _ in range(params.switches_per_pod)]
        )
    all_switch_ids = network.switch_ids()

    created_hosts = 0
    tenant_index = 0
    while created_hosts < params.host_count:
        remaining = params.host_count - created_hosts
        size = min(rng.randint(params.min_tenant_size, params.max_tenant_size), remaining)
        tenant = network.tenants.create_tenant(f"tenant-{tenant_index:04d}")
        home_pod = pods[rng.randrange(len(pods))]
        home_count = min(params.home_switches_per_tenant, len(home_pod))
        home_switches = rng.sample(home_pod, home_count)
        for _ in range(size):
            if rng.random() < params.pod_spill_fraction:
                switch_id = rng.choice(all_switch_ids)
            else:
                switch_id = rng.choice(home_switches)
            network.attach_host(switch_id, tenant.tenant_id)
            created_hosts += 1
        tenant_index += 1
    _assign_uplink_capacities(network, params.uplink_mbps)
    return network
