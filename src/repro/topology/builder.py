"""Builders for realistic multi-tenant data-center topologies.

Two builders cover everything the evaluation needs:

* :func:`build_multi_tenant_datacenter` — the general-purpose builder.  It
  creates ``switch_count`` edge switches, then creates tenants whose sizes
  are drawn uniformly from the 20–100 VM range reported in the paper until
  ``host_count`` VMs exist.  Each tenant's VMs are placed on a small number
  of "home" switches (with a configurable spill fraction placed anywhere),
  which is what produces the traffic locality the grouping exploits.
* :func:`build_paper_real_topology` / :func:`build_paper_synthetic_topology`
  — convenience wrappers with the published dimensions (272 switches / 6509
  hosts, and the 10× scaled 2713 switches / 65090 hosts).  The synthetic
  scale is large; callers can pass ``scale`` to shrink it proportionally for
  quick runs while keeping the same shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng
from repro.topology.network import DataCenterNetwork


def _assign_uplink_capacities(network: DataCenterNetwork, uplink_mbps: Optional[float]) -> None:
    """Assign one uniform uplink capacity to every switch (no-op when unset)."""
    if uplink_mbps is None:
        return
    for switch_id in network.switch_ids():
        network.set_uplink_capacity_mbps(switch_id, uplink_mbps)


@dataclass(frozen=True, slots=True)
class TopologyProfile:
    """Parameters controlling the generated multi-tenant topology."""

    switch_count: int
    host_count: int
    min_tenant_size: int = 20
    max_tenant_size: int = 100
    home_switches_per_tenant: int = 3
    spill_fraction: float = 0.05
    uplink_mbps: Optional[float] = None
    seed: int = 2015

    def __post_init__(self) -> None:
        if self.switch_count <= 0:
            raise ConfigurationError("switch_count must be positive")
        if self.host_count <= 0:
            raise ConfigurationError("host_count must be positive")
        if not 1 <= self.min_tenant_size <= self.max_tenant_size:
            raise ConfigurationError("tenant size bounds must satisfy 1 <= min <= max")
        if self.home_switches_per_tenant < 1:
            raise ConfigurationError("home_switches_per_tenant must be at least 1")
        if not 0.0 <= self.spill_fraction <= 1.0:
            raise ConfigurationError("spill_fraction must be in [0, 1]")
        if self.uplink_mbps is not None and self.uplink_mbps <= 0:
            raise ConfigurationError("uplink_mbps must be positive when set")


def build_multi_tenant_datacenter(profile: TopologyProfile) -> DataCenterNetwork:
    """Create a data center whose tenants exhibit the paper's locality properties."""
    rng = make_rng(profile.seed, "topology")
    network = DataCenterNetwork()
    for _ in range(profile.switch_count):
        network.add_edge_switch()

    switch_ids = network.switch_ids()
    created_hosts = 0
    tenant_index = 0
    while created_hosts < profile.host_count:
        remaining = profile.host_count - created_hosts
        size = rng.randint(profile.min_tenant_size, profile.max_tenant_size)
        size = min(size, remaining)
        tenant = network.tenants.create_tenant(f"tenant-{tenant_index:04d}")
        tenant_index += 1

        home_count = min(profile.home_switches_per_tenant, len(switch_ids))
        home_switches = rng.sample(switch_ids, home_count)
        for _ in range(size):
            if rng.random() < profile.spill_fraction and len(switch_ids) > home_count:
                switch_id = rng.choice(switch_ids)
            else:
                switch_id = rng.choice(home_switches)
            network.attach_host(switch_id, tenant.tenant_id)
            created_hosts += 1
    _assign_uplink_capacities(network, profile.uplink_mbps)
    return network


@dataclass(frozen=True, slots=True)
class PaperRealTopologyParams:
    """Params of the registered ``"paper-real"`` shape (272 sw / 6509 hosts x scale)."""

    scale: float = 1.0
    uplink_mbps: Optional[float] = None
    seed: int = 2015

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigurationError("scale must be positive")
        if self.uplink_mbps is not None and self.uplink_mbps <= 0:
            raise ConfigurationError("uplink_mbps must be positive when set")

    @property
    def switch_count(self) -> int:
        """Edge switches at this scale."""
        return max(8, round(272 * self.scale))

    @property
    def host_count(self) -> int:
        """Hosts at this scale."""
        return max(64, round(6509 * self.scale))


@dataclass(frozen=True, slots=True)
class PaperSyntheticTopologyParams:
    """Params of the registered ``"paper-synthetic"`` shape (2713 sw / 65090 hosts x scale)."""

    scale: float = 1.0
    uplink_mbps: Optional[float] = None
    seed: int = 2015

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigurationError("scale must be positive")
        if self.uplink_mbps is not None and self.uplink_mbps <= 0:
            raise ConfigurationError("uplink_mbps must be positive when set")

    @property
    def switch_count(self) -> int:
        """Edge switches at this scale."""
        return max(16, round(2713 * self.scale))

    @property
    def host_count(self) -> int:
        """Hosts at this scale."""
        return max(128, round(65090 * self.scale))


def build_paper_real_topology(
    *, scale: float = 1.0, seed: int = 2015, uplink_mbps: Optional[float] = None
) -> DataCenterNetwork:
    """Topology with the dimensions of the paper's real trace (272 switches, 6509 hosts).

    ``scale`` shrinks both dimensions proportionally (minimum 8 switches / 64
    hosts) so tests and examples can run in seconds while benchmarks use the
    full size.
    """
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    switch_count = max(8, round(272 * scale))
    host_count = max(64, round(6509 * scale))
    profile = TopologyProfile(
        switch_count=switch_count, host_count=host_count, uplink_mbps=uplink_mbps, seed=seed
    )
    return build_multi_tenant_datacenter(profile)


def build_paper_synthetic_topology(
    *, scale: float = 1.0, seed: int = 2015, uplink_mbps: Optional[float] = None
) -> DataCenterNetwork:
    """Topology with the dimensions of the synthetic traces (2713 switches, 65090 hosts).

    The full synthetic scale is 10× the real one (paper §V-B); ``scale``
    shrinks it for tractable runs.
    """
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    switch_count = max(16, round(2713 * scale))
    host_count = max(128, round(65090 * scale))
    profile = TopologyProfile(
        switch_count=switch_count, host_count=host_count, uplink_mbps=uplink_mbps, seed=seed
    )
    return build_multi_tenant_datacenter(profile)
