"""Tenant model for multi-tenant cloud data centers.

The paper's motivation (§II-B) is that tenants stay small (20–100 VMs each)
while the number of tenants grows; traffic is mostly confined within a
tenant.  The tenant model tracks which hosts belong to which tenant and the
VLAN identifier the controller's tenant-information-management module uses
to scope ARP relaying.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.common.errors import TopologyError


@dataclass(slots=True)
class Tenant:
    """A tenant: an isolated slice of virtual machines."""

    tenant_id: int
    name: str
    vlan_id: int
    host_ids: List[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of virtual machines the tenant currently owns."""
        return len(self.host_ids)

    def add_host(self, host_id: int) -> None:
        """Attach a VM to the tenant."""
        if host_id in self.host_ids:
            raise TopologyError(f"host {host_id} already belongs to tenant {self.tenant_id}")
        self.host_ids.append(host_id)

    def remove_host(self, host_id: int) -> None:
        """Detach a VM from the tenant."""
        try:
            self.host_ids.remove(host_id)
        except ValueError as exc:
            raise TopologyError(f"host {host_id} does not belong to tenant {self.tenant_id}") from exc


class TenantDirectory:
    """Registry of all tenants in the data center."""

    __slots__ = ("_tenants", "_host_to_tenant", "_next_tenant_id")

    def __init__(self) -> None:
        self._tenants: Dict[int, Tenant] = {}
        self._host_to_tenant: Dict[int, int] = {}
        # Identifiers are never reused, so tenants arriving after a departure
        # (workload churn) cannot collide with an earlier tenant's VLAN.
        self._next_tenant_id = 0

    def create_tenant(self, name: str, *, vlan_id: int | None = None) -> Tenant:
        """Create a new tenant with a fresh identifier (VLAN defaults to the id + 100)."""
        tenant_id = self._next_tenant_id
        self._next_tenant_id += 1
        tenant = Tenant(tenant_id=tenant_id, name=name, vlan_id=vlan_id if vlan_id is not None else tenant_id + 100)
        self._tenants[tenant_id] = tenant
        return tenant

    def get(self, tenant_id: int) -> Tenant:
        """Return the tenant with ``tenant_id`` (raises :class:`TopologyError` if absent)."""
        try:
            return self._tenants[tenant_id]
        except KeyError as exc:
            raise TopologyError(f"unknown tenant {tenant_id}") from exc

    def assign_host(self, tenant_id: int, host_id: int) -> None:
        """Record that ``host_id`` belongs to ``tenant_id``."""
        tenant = self.get(tenant_id)
        if host_id in self._host_to_tenant:
            raise TopologyError(f"host {host_id} is already assigned to a tenant")
        tenant.add_host(host_id)
        self._host_to_tenant[host_id] = tenant_id

    def unassign_host(self, host_id: int) -> int:
        """Detach ``host_id`` from its tenant; returns the former tenant id."""
        try:
            tenant_id = self._host_to_tenant.pop(host_id)
        except KeyError as exc:
            raise TopologyError(f"host {host_id} is not assigned to any tenant") from exc
        self.get(tenant_id).remove_host(host_id)
        return tenant_id

    def remove_tenant(self, tenant_id: int) -> Tenant:
        """Remove a tenant that no longer owns any VM (tenant departure)."""
        tenant = self.get(tenant_id)
        if tenant.host_ids:
            raise TopologyError(
                f"tenant {tenant_id} still owns {len(tenant.host_ids)} hosts; remove them first"
            )
        del self._tenants[tenant_id]
        return tenant

    def tenant_of_host(self, host_id: int) -> int:
        """Return the tenant id owning ``host_id``."""
        try:
            return self._host_to_tenant[host_id]
        except KeyError as exc:
            raise TopologyError(f"host {host_id} is not assigned to any tenant") from exc

    def tenants(self) -> List[Tenant]:
        """All tenants, ordered by identifier."""
        return [self._tenants[tenant_id] for tenant_id in sorted(self._tenants)]

    def __len__(self) -> int:
        return len(self._tenants)

    def __contains__(self, tenant_id: int) -> bool:
        return tenant_id in self._tenants

    def sizes(self) -> List[int]:
        """Sizes of all tenants (used to check the 20–100 VM property)."""
        return [tenant.size for tenant in self.tenants()]

    def hosts_of(self, tenant_ids: Iterable[int]) -> List[int]:
        """All host ids belonging to any of ``tenant_ids``."""
        result: List[int] = []
        for tenant_id in tenant_ids:
            result.extend(self.get(tenant_id).host_ids)
        return result
