"""The pluggable topology registry.

The twin of :mod:`repro.traffic.registry` for the other half of a workload: a
topology shape is a named builder owning a frozen params dataclass, and
:class:`~repro.core.scenario.TopologySpec` references it purely by name plus
a plain params dict — which is what keeps scenario specs JSON-serializable.

* :func:`register_topology` registers a builder under a short name
  (``"multi-tenant"``, ``"striped"``, ...); third-party shapes plug in with
  the same decorator from their own modules;
* :func:`get_topology` / :func:`available_topologies` look the registry up.

Builders whose params expose ``switch_count`` / ``host_count`` (as fields or
properties — all the built-ins do) let the CLI and benchmark payloads report
topology dimensions without knowing the shape.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, List, Mapping, Optional

from repro.common.registry import (
    NamedRegistry,
    make_entry_params,
    params_field_names,
    require_params_dataclass,
)
from repro.topology.network import DataCenterNetwork

#: Builds one network from validated params.
TopologyFactory = Callable[[Any], DataCenterNetwork]


@dataclasses.dataclass(frozen=True, slots=True)
class TopologyEntry:
    """One registered topology shape."""

    name: str
    factory: TopologyFactory
    params_type: type
    label: str
    description: str = ""

    def param_names(self) -> frozenset:
        """Names of the knobs this shape's params dataclass accepts."""
        return params_field_names(self.params_type)

    def make_params(self, params: Optional[Mapping[str, Any]] = None) -> Any:
        """Validate a raw params mapping into this shape's params dataclass."""
        return make_entry_params(
            self.params_type, params, path=f"topology {self.name!r} params"
        )

    def build(self, params: Optional[Mapping[str, Any]] = None) -> DataCenterNetwork:
        """Build one network from a raw params mapping."""
        return self.factory(self.make_params(params))


_REGISTRY: NamedRegistry[TopologyEntry] = NamedRegistry(
    kind="topology",
    name_label="topology name",
    known_label="registered shapes",
)


def register_topology(
    name: str,
    *,
    params: type,
    label: str | None = None,
    description: str = "",
    replace: bool = False,
) -> Callable[[TopologyFactory], TopologyFactory]:
    """Register a topology builder under ``name``.

    Use as a decorator on a builder taking validated params and returning a
    :class:`~repro.topology.network.DataCenterNetwork`::

        @register_topology("ring", params=RingTopologyParams, label="Ring")
        def build_ring(params):
            ...
            return network
    """
    _REGISTRY.validate_name(name)
    require_params_dataclass("topology", name, params)

    def decorator(factory: TopologyFactory) -> TopologyFactory:
        _REGISTRY.add(
            name,
            TopologyEntry(
                name=name,
                factory=factory,
                params_type=params,
                label=label or name,
                description=description,
            ),
            replace=replace,
        )
        return factory

    return decorator


def unregister_topology(name: str) -> None:
    """Remove a registered topology shape (primarily for tests)."""
    _REGISTRY.remove(name)


def get_topology(name: str) -> TopologyEntry:
    """Look a registered topology shape up by name."""
    return _REGISTRY.get(name)


def available_topologies() -> List[TopologyEntry]:
    """All registered topology shapes, sorted by name."""
    return _REGISTRY.available()


def _register_builtin_topologies() -> None:
    """Register the built-in shapes (idempotent; called at import time)."""
    if "multi-tenant" in _REGISTRY:
        return
    from repro.topology.builder import (
        PaperRealTopologyParams,
        PaperSyntheticTopologyParams,
        TopologyProfile,
        build_multi_tenant_datacenter,
        build_paper_real_topology,
        build_paper_synthetic_topology,
    )
    from repro.topology.shapes import (
        MultiPodTopologyParams,
        StripedTopologyParams,
        build_multi_pod_datacenter,
        build_striped_datacenter,
    )

    register_topology(
        "multi-tenant",
        params=TopologyProfile,
        label="Multi-tenant home-switch",
        description="Tenants placed on a few home switches with a spill fraction (paper §V-A)",
    )(build_multi_tenant_datacenter)

    @register_topology(
        "paper-real",
        params=PaperRealTopologyParams,
        label="Paper real-trace scale",
        description="The published real-trace dimensions (272 switches / 6509 hosts), scalable",
    )
    def _build_paper_real(params):
        return build_paper_real_topology(
            scale=params.scale, seed=params.seed, uplink_mbps=params.uplink_mbps
        )

    @register_topology(
        "paper-synthetic",
        params=PaperSyntheticTopologyParams,
        label="Paper synthetic scale",
        description="The 10x synthetic dimensions (2713 switches / 65090 hosts), scalable",
    )
    def _build_paper_synthetic(params):
        return build_paper_synthetic_topology(
            scale=params.scale, seed=params.seed, uplink_mbps=params.uplink_mbps
        )

    register_topology(
        "striped",
        params=StripedTopologyParams,
        label="Striped (anti-local)",
        description="Tenant VMs striped round-robin across all switches — defeats grouping",
    )(build_striped_datacenter)

    register_topology(
        "multi-pod",
        params=MultiPodTopologyParams,
        label="Multi-pod",
        description="Pods of switches with tenants confined to a home pod (two locality tiers)",
    )(build_multi_pod_datacenter)


_register_builtin_topologies()
