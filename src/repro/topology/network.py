"""Data-center network model with core–edge separation.

The paper's architecture (§III-B.1) treats the core as an opaque IP underlay
providing one-hop logical connectivity between edge switches, and puts all
intelligence at the edge.  :class:`DataCenterNetwork` therefore records only
what the control plane needs: the set of edge switches (with their underlay
tunnel addresses and management MACs), the hosts attached to each switch, and
the tenant directory.  VM migration updates the host-to-switch mapping, which
is the event that drives live state dissemination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.addresses import IpAddress, MacAddress
from repro.common.errors import TopologyError, UnknownHostError, UnknownSwitchError
from repro.topology.host import Host
from repro.topology.tenant import TenantDirectory


@dataclass(frozen=True, slots=True)
class EdgeSwitchInfo:
    """Static facts about one edge switch."""

    switch_id: int
    management_mac: MacAddress
    underlay_ip: IpAddress
    port_count: int = 48


class DataCenterNetwork:
    """The emulated multi-tenant data center (edge view)."""

    def __init__(self) -> None:
        self._switches: Dict[int, EdgeSwitchInfo] = {}
        self._hosts: Dict[int, Host] = {}
        self._hosts_by_mac: Dict[MacAddress, Host] = {}
        self._hosts_on_switch: Dict[int, List[int]] = {}
        # Host identifiers are never reused: a VM arriving after another
        # departed (workload churn) must not inherit the departed VM's MAC.
        self._next_host_id = 0
        self.tenants = TenantDirectory()
        # Uplink capacities into the one-hop core, by switch.  Empty means
        # links are uncapacitated and the bandwidth subsystem stays inert.
        self._uplink_mbps: Dict[int, float] = {}
        self.link_utilization_window_seconds: float = 300.0

    # -- switches ----------------------------------------------------------

    def add_edge_switch(self, *, port_count: int = 48) -> EdgeSwitchInfo:
        """Register a new edge switch and return its static description."""
        switch_id = len(self._switches)
        info = EdgeSwitchInfo(
            switch_id=switch_id,
            management_mac=MacAddress.from_switch_index(switch_id),
            underlay_ip=IpAddress.from_switch_index(switch_id),
            port_count=port_count,
        )
        self._switches[switch_id] = info
        self._hosts_on_switch[switch_id] = []
        return info

    def switch(self, switch_id: int) -> EdgeSwitchInfo:
        """Return the description of ``switch_id`` (raises when unknown)."""
        try:
            return self._switches[switch_id]
        except KeyError as exc:
            raise UnknownSwitchError(f"unknown edge switch {switch_id}") from exc

    def switches(self) -> List[EdgeSwitchInfo]:
        """All edge switches ordered by identifier."""
        return [self._switches[switch_id] for switch_id in sorted(self._switches)]

    def switch_ids(self) -> List[int]:
        """All edge-switch identifiers."""
        return sorted(self._switches)

    def switch_count(self) -> int:
        """Number of edge switches."""
        return len(self._switches)

    # -- link capacities ----------------------------------------------------

    def set_uplink_capacity_mbps(self, switch_id: int, mbps: float) -> None:
        """Assign a capacity to ``switch_id``'s uplink into the core."""
        self.switch(switch_id)
        if mbps <= 0:
            raise TopologyError(f"uplink capacity must be positive, got {mbps}")
        self._uplink_mbps[switch_id] = float(mbps)

    def uplink_capacity_mbps(self, switch_id: int) -> Optional[float]:
        """The uplink capacity of ``switch_id``, or ``None`` when uncapacitated."""
        return self._uplink_mbps.get(switch_id)

    def link_capacities_mbps(self) -> Dict[int, float]:
        """All assigned uplink capacities by switch id (possibly empty)."""
        return dict(self._uplink_mbps)

    def has_link_capacities(self) -> bool:
        """Whether any uplink has a capacity assigned."""
        return bool(self._uplink_mbps)

    def set_link_utilization_window(self, seconds: float) -> None:
        """Set the accounting window the utilization meter buckets bytes into."""
        if seconds <= 0:
            raise TopologyError(f"utilization window must be positive, got {seconds}")
        self.link_utilization_window_seconds = float(seconds)

    # -- hosts ---------------------------------------------------------------

    def attach_host(self, switch_id: int, tenant_id: int) -> Host:
        """Create a VM on ``switch_id`` for ``tenant_id`` and return it."""
        self.switch(switch_id)
        if tenant_id not in self.tenants:
            raise TopologyError(f"unknown tenant {tenant_id}")
        host_id = self._next_host_id
        self._next_host_id += 1
        port = self._free_port(switch_id)
        host = Host(
            host_id=host_id,
            mac=MacAddress.from_host_index(host_id),
            tenant_id=tenant_id,
            switch_id=switch_id,
            port=port,
        )
        self._hosts[host_id] = host
        self._hosts_by_mac[host.mac] = host
        self._hosts_on_switch[switch_id].append(host_id)
        self.tenants.assign_host(tenant_id, host_id)
        return host

    def host(self, host_id: int) -> Host:
        """Return the host with ``host_id`` (raises when unknown)."""
        try:
            return self._hosts[host_id]
        except KeyError as exc:
            raise UnknownHostError(f"unknown host {host_id}") from exc

    def has_host(self, host_id: int) -> bool:
        """Whether ``host_id`` currently exists (it may have departed)."""
        return host_id in self._hosts

    def host_if_present(self, host_id: int) -> Optional[Host]:
        """The host with ``host_id``, or ``None`` when it departed.

        One dict probe instead of the ``has_host`` + ``host`` pair; the
        replay hot path resolves two endpoints per flow with this.
        """
        return self._hosts.get(host_id)

    def host_by_mac(self, mac: MacAddress) -> Host:
        """Return the host owning ``mac`` (raises when unknown)."""
        try:
            return self._hosts_by_mac[mac]
        except KeyError as exc:
            raise UnknownHostError(f"no host with MAC {mac}") from exc

    def hosts(self) -> List[Host]:
        """All hosts ordered by identifier."""
        return [self._hosts[host_id] for host_id in sorted(self._hosts)]

    def host_count(self) -> int:
        """Number of hosts (virtual machines)."""
        return len(self._hosts)

    def hosts_on_switch(self, switch_id: int) -> List[Host]:
        """The hosts currently attached to ``switch_id``."""
        self.switch(switch_id)
        return [self._hosts[host_id] for host_id in self._hosts_on_switch[switch_id]]

    def switch_of_host(self, host_id: int) -> int:
        """The switch currently hosting ``host_id``."""
        return self.host(host_id).switch_id

    def migrate_host(self, host_id: int, new_switch_id: int) -> Host:
        """Move a VM to another edge switch; returns the updated host record.

        Migration changes the host-to-switch mapping, which triggers live
        state dissemination in the control plane (paper §III-D.3).
        """
        host = self.host(host_id)
        self.switch(new_switch_id)
        if host.switch_id == new_switch_id:
            return host
        self._hosts_on_switch[host.switch_id].remove(host_id)
        new_port = self._free_port(new_switch_id)
        migrated = host.migrated_to(new_switch_id, new_port)
        self._hosts[host_id] = migrated
        self._hosts_by_mac[migrated.mac] = migrated
        self._hosts_on_switch[new_switch_id].append(host_id)
        return migrated

    def remove_host(self, host_id: int) -> Host:
        """Remove a VM entirely (tenant departure); returns the last record.

        The host's port becomes free for reuse and the tenant directory
        forgets the assignment; identifiers and MACs are never reused.
        """
        host = self.host(host_id)
        self._hosts_on_switch[host.switch_id].remove(host_id)
        del self._hosts[host_id]
        del self._hosts_by_mac[host.mac]
        self.tenants.unassign_host(host_id)
        return host

    def remove_tenant(self, tenant_id: int) -> List[Host]:
        """Remove a tenant and every VM it still owns (tenant departure)."""
        tenant = self.tenants.get(tenant_id)
        removed = [self.remove_host(host_id) for host_id in list(tenant.host_ids)]
        self.tenants.remove_tenant(tenant_id)
        return removed

    def _free_port(self, switch_id: int) -> int:
        """Smallest local port not used by any VM on ``switch_id``.

        With a static topology this is equivalent to ``host count + 1``; once
        VMs migrate away or depart it reuses freed ports instead of handing
        out a port that a later arrival would collide on.
        """
        used = {self._hosts[host_id].port for host_id in self._hosts_on_switch[switch_id]}
        port = 1
        while port in used:
            port += 1
        return port

    # -- derived views --------------------------------------------------------

    def structurally_equal(self, other: "DataCenterNetwork") -> bool:
        """Whether two networks describe the same topology, placement and tenancy.

        Deterministic builders produce structurally-equal (but distinct)
        objects from the same spec; this is the identity used to decide
        whether two traces live in "the same" data center.  MAC and underlay
        addresses are pure functions of the switch/host identifiers, so
        comparing identifiers, port assignments and tenant membership covers
        the full observable structure.
        """
        if self is other:
            return True
        if [(info.switch_id, info.port_count) for info in self.switches()] != [
            (info.switch_id, info.port_count) for info in other.switches()
        ]:
            return False
        if self._uplink_mbps != other._uplink_mbps:
            return False
        if {
            host.host_id: (host.tenant_id, host.switch_id, host.port) for host in self.hosts()
        } != {
            host.host_id: (host.tenant_id, host.switch_id, host.port) for host in other.hosts()
        }:
            return False
        return {
            tenant.tenant_id: tuple(sorted(tenant.host_ids)) for tenant in self.tenants.tenants()
        } == {
            tenant.tenant_id: tuple(sorted(tenant.host_ids)) for tenant in other.tenants.tenants()
        }

    def switch_pair_of_hosts(self, src_host_id: int, dst_host_id: int) -> tuple[int, int]:
        """The (source switch, destination switch) pair for a host pair."""
        return self.host(src_host_id).switch_id, self.host(dst_host_id).switch_id

    def tenant_footprint(self, tenant_id: int) -> set[int]:
        """The set of switches hosting at least one VM of ``tenant_id``."""
        tenant = self.tenants.get(tenant_id)
        return {self._hosts[host_id].switch_id for host_id in tenant.host_ids}

    def describe(self) -> Dict[str, int]:
        """Small summary used by reports and examples."""
        return {
            "switches": self.switch_count(),
            "hosts": self.host_count(),
            "tenants": len(self.tenants),
        }
