"""Finite flow-table management: timeout/eviction policies and table specs.

The package has three layers:

* :mod:`repro.tables.policies` — the :class:`TableTimeoutPolicy` interface
  and the built-in policies (static idle/hard timeouts, the OpenFlow-style
  hybrid, pure LRU, and an adaptive inter-arrival timeout predictor);
* :mod:`repro.tables.registry` — the ``@register_table_policy`` registry
  resolving policy names from :class:`~repro.common.config.FlowTableConfig`;
* :mod:`repro.tables.spec` — :class:`TableSpec`, the declarative overlay a
  :class:`~repro.core.scenario.ScenarioSpec` uses to put every switch under
  table pressure.
"""

from repro.tables.policies import (
    AdaptiveParams,
    AdaptiveTimeoutPolicy,
    IdleHardHybridPolicy,
    IdleHardParams,
    LruParams,
    RemovalReason,
    StaticHardParams,
    StaticHardPolicy,
    StaticIdleParams,
    StaticIdlePolicy,
    TableTimeoutPolicy,
)
from repro.tables.registry import (
    TablePolicyEntry,
    available_table_policies,
    build_policy,
    get_table_policy,
    register_table_policy,
    unregister_table_policy,
)
from repro.tables.spec import TableSpec

__all__ = [
    "AdaptiveParams",
    "AdaptiveTimeoutPolicy",
    "IdleHardHybridPolicy",
    "IdleHardParams",
    "LruParams",
    "RemovalReason",
    "StaticHardParams",
    "StaticHardPolicy",
    "StaticIdleParams",
    "StaticIdlePolicy",
    "TableSpec",
    "TablePolicyEntry",
    "TableTimeoutPolicy",
    "available_table_policies",
    "build_policy",
    "get_table_policy",
    "register_table_policy",
    "unregister_table_policy",
]
