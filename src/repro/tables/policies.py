"""Timeout/eviction policies for finite switch flow tables.

Real TCAMs are small, and what a switch does when rules age or space runs
out dominates control-plane load under table pressure: every rule removed
too early comes back as a ``Packet_In`` re-install, every rule kept too
long squeezes out fresh flows.  A :class:`TableTimeoutPolicy` encapsulates
exactly those decisions for one :class:`~repro.datastructures.flow_table.FlowTable`:

* when an installed rule has expired (idle timeout, hard timeout, both, or
  never), and
* in which order resident rules are evicted when the table is full.

The table calls the policy's hooks (``rule_installed`` / ``rule_matched`` /
``rule_removed``) so stateful policies can learn from the traffic; the
built-in ``adaptive`` policy uses them to track per-flow inter-arrival gaps
and tune idle timeouts the way timeout predictors such as HQTimer do.

Policies are registered by name in :mod:`repro.tables.registry`; each table
gets its **own** policy instance, so per-switch learned state never leaks
between switches or between systems under test.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.common.config import FlowTableConfig
from repro.common.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.common.packets import FlowKey
    from repro.datastructures.flow_table import FlowRule

#: Hard timeout applied by the ``static-hard`` policy when neither its params
#: nor the table config provide one.
DEFAULT_HARD_TIMEOUT_SECONDS = 600.0


class RemovalReason(enum.Enum):
    """Why a rule left the table without an explicit controller delete."""

    IDLE_TIMEOUT = "idle_timeout"
    HARD_TIMEOUT = "hard_timeout"
    EVICTED = "evicted"


class TableTimeoutPolicy:
    """Base policy: never expires anything, evicts least-recently matched.

    Subclasses override :meth:`expiry_reason` (and, for hot paths,
    :meth:`expired`) to implement timeouts, and the lifecycle hooks to keep
    whatever per-flow state they need.  The base class doubles as the
    ``lru`` built-in: a table governed by it relies purely on capacity
    eviction, like a TCAM manager with timeouts disabled.
    """

    name = "lru"

    # -- lifecycle hooks (stateful policies override) -----------------------

    def rule_installed(self, rule: "FlowRule", now: float) -> None:
        """Called after a rule is installed (including overwrites)."""

    def rule_matched(self, rule: "FlowRule", now: float) -> None:
        """Called after a lookup hit refreshed ``rule``."""

    def rule_removed(self, rule: "FlowRule", now: float, reason: RemovalReason) -> None:
        """Called after a rule was removed by timeout or eviction."""

    # -- expiry -------------------------------------------------------------

    def expiry_reason(self, rule: "FlowRule", now: float) -> Optional[RemovalReason]:
        """Why ``rule`` is expired at ``now``, or ``None`` while it is live."""
        return None

    def expired(
        self, rules: Iterable["FlowRule"], now: float
    ) -> List[Tuple["FlowRule", RemovalReason]]:
        """All expired rules with their reasons (the periodic sweep body).

        The default defers to :meth:`expiry_reason` per rule; policies with
        a single timeout override this with a tight comprehension because
        the sweep visits every resident rule.
        """
        out = []
        for rule in rules:
            reason = self.expiry_reason(rule, now)
            if reason is not None:
                out.append((rule, reason))
        return out

    # -- vectorization ------------------------------------------------------

    def timeout_bounds(self) -> Optional[Tuple[float, float]]:
        """Static ``(idle, hard)`` timeout bounds, or ``None`` if stateful.

        The vectorized replay kernel classifies a rule as alive across a
        batch of arrivals purely from these bounds (a rule expires once
        ``now - last_matched_at > idle`` or ``now - installed_at > hard``).
        A policy whose expiry depends on learned per-flow state — or whose
        match/install hooks mutate state — must return ``None``, which makes
        the kernel route every flow touching an installed rule through the
        scalar path instead.  The base (``lru``) policy never expires
        anything, so both bounds are infinite.
        """
        return (float("inf"), float("inf"))

    # -- eviction -----------------------------------------------------------

    def eviction_order(self, rules: Iterable["FlowRule"]) -> List["FlowRule"]:
        """Resident rules sorted victim-first for capacity eviction.

        The default is least-recently matched first; the sort is stable over
        the table's insertion order, so eviction is deterministic.
        """
        return sorted(rules, key=lambda rule: rule.last_matched_at)


# -- static timeouts ---------------------------------------------------------


@dataclass(frozen=True, slots=True)
class StaticIdleParams:
    """Knobs of ``static-idle``; ``None`` inherits the table config's value."""

    idle_timeout_seconds: Optional[float] = None


class StaticIdlePolicy(TableTimeoutPolicy):
    """A fixed idle timeout: a rule expires once unmatched for that long."""

    name = "static-idle"

    def __init__(self, idle_timeout_seconds: float) -> None:
        if idle_timeout_seconds <= 0:
            raise ConfigurationError("static-idle idle_timeout_seconds must be positive")
        self._idle = idle_timeout_seconds

    def expiry_reason(self, rule: "FlowRule", now: float) -> Optional[RemovalReason]:
        if now - rule.last_matched_at > self._idle:
            return RemovalReason.IDLE_TIMEOUT
        return None

    def expired(self, rules, now):
        idle = self._idle
        return [
            (rule, RemovalReason.IDLE_TIMEOUT)
            for rule in rules
            if now - rule.last_matched_at > idle
        ]

    def timeout_bounds(self) -> Optional[Tuple[float, float]]:
        return (self._idle, float("inf"))


@dataclass(frozen=True, slots=True)
class StaticHardParams:
    """Knobs of ``static-hard``; ``None`` inherits the table config's value."""

    hard_timeout_seconds: Optional[float] = None


class StaticHardPolicy(TableTimeoutPolicy):
    """A fixed hard timeout: a rule expires a set time after installation."""

    name = "static-hard"

    def __init__(self, hard_timeout_seconds: float) -> None:
        if hard_timeout_seconds <= 0:
            raise ConfigurationError("static-hard hard_timeout_seconds must be positive")
        self._hard = hard_timeout_seconds

    def expiry_reason(self, rule: "FlowRule", now: float) -> Optional[RemovalReason]:
        if now - rule.installed_at > self._hard:
            return RemovalReason.HARD_TIMEOUT
        return None

    def expired(self, rules, now):
        hard = self._hard
        return [
            (rule, RemovalReason.HARD_TIMEOUT)
            for rule in rules
            if now - rule.installed_at > hard
        ]

    def timeout_bounds(self) -> Optional[Tuple[float, float]]:
        return (float("inf"), self._hard)


@dataclass(frozen=True, slots=True)
class IdleHardParams:
    """Knobs of ``idle-hard-hybrid``; ``None`` inherits the config's values."""

    idle_timeout_seconds: Optional[float] = None
    hard_timeout_seconds: Optional[float] = None


class IdleHardHybridPolicy(TableTimeoutPolicy):
    """OpenFlow's standard pair: idle timeout plus a hard upper bound."""

    name = "idle-hard-hybrid"

    def __init__(self, idle_timeout_seconds: float, hard_timeout_seconds: float) -> None:
        if idle_timeout_seconds <= 0:
            raise ConfigurationError("idle-hard-hybrid idle_timeout_seconds must be positive")
        if hard_timeout_seconds < idle_timeout_seconds:
            raise ConfigurationError(
                "idle-hard-hybrid hard_timeout_seconds must be >= idle_timeout_seconds "
                f"({hard_timeout_seconds} < {idle_timeout_seconds})"
            )
        self._idle = idle_timeout_seconds
        self._hard = hard_timeout_seconds

    def expiry_reason(self, rule: "FlowRule", now: float) -> Optional[RemovalReason]:
        # Hard wins on a tie so a rule pinned by constant matches still ages out.
        if now - rule.installed_at > self._hard:
            return RemovalReason.HARD_TIMEOUT
        if now - rule.last_matched_at > self._idle:
            return RemovalReason.IDLE_TIMEOUT
        return None

    def timeout_bounds(self) -> Optional[Tuple[float, float]]:
        return (self._idle, self._hard)


@dataclass(frozen=True, slots=True)
class LruParams:
    """``lru`` takes no knobs: capacity eviction only, no timeouts."""


# -- adaptive timeout prediction ---------------------------------------------


@dataclass(frozen=True, slots=True)
class AdaptiveParams:
    """Knobs of the ``adaptive`` inter-arrival timeout predictor.

    The predicted idle timeout for a flow is ``margin`` times its smoothed
    inter-arrival gap, clamped into ``[min_timeout_seconds,
    max_timeout_seconds]``; flows without history use the table config's
    idle timeout.  ``smoothing`` is the EWMA weight of the newest gap, and
    ``max_tracked_keys`` bounds the predictor's memory (oldest-first
    forgetting), which keeps multi-million-flow streamed replays bounded.
    """

    min_timeout_seconds: float = 5.0
    max_timeout_seconds: float = 300.0
    margin: float = 2.0
    smoothing: float = 0.5
    max_tracked_keys: int = 65_536


class AdaptiveTimeoutPolicy(TableTimeoutPolicy):
    """Tunes per-flow idle timeouts from observed inter-arrival gaps.

    The same idea as timeout predictors à la HQTimer: every arrival for a
    flow key updates an exponentially weighted estimate of the key's
    inter-arrival gap, and the key's idle timeout becomes a small multiple
    of that estimate — bursty flows get tight timeouts (freeing the table
    fast), periodic flows get timeouts just past their period (avoiding the
    re-install round trip).
    """

    name = "adaptive"

    def __init__(self, params: AdaptiveParams, default_timeout_seconds: float) -> None:
        if params.min_timeout_seconds <= 0:
            raise ConfigurationError("adaptive min_timeout_seconds must be positive")
        if params.max_timeout_seconds < params.min_timeout_seconds:
            raise ConfigurationError(
                "adaptive max_timeout_seconds must be >= min_timeout_seconds"
            )
        if params.margin <= 0:
            raise ConfigurationError("adaptive margin must be positive")
        if not 0.0 < params.smoothing <= 1.0:
            raise ConfigurationError("adaptive smoothing must be in (0, 1]")
        if params.max_tracked_keys <= 0:
            raise ConfigurationError("adaptive max_tracked_keys must be positive")
        self._params = params
        self._default = default_timeout_seconds
        # key -> (last arrival time, EWMA inter-arrival gap); insertion order
        # doubles as the forgetting order, so memory stays bounded and the
        # state (hence the replay) is deterministic.
        self._history: Dict["FlowKey", Tuple[float, Optional[float]]] = {}
        self._timeout_of: Dict["FlowKey", float] = {}

    def timeout_for(self, key: "FlowKey") -> float:
        """The idle timeout currently predicted for ``key``."""
        return self._timeout_of.get(key, self._default)

    def _observe(self, key: "FlowKey", now: float) -> None:
        entry = self._history.get(key)
        if entry is None:
            if len(self._history) >= self._params.max_tracked_keys:
                oldest = next(iter(self._history))
                del self._history[oldest]
                self._timeout_of.pop(oldest, None)
            self._history[key] = (now, None)
            return
        last_seen, ewma = entry
        gap = now - last_seen
        alpha = self._params.smoothing
        ewma = gap if ewma is None else alpha * gap + (1.0 - alpha) * ewma
        self._history[key] = (now, ewma)
        predicted = self._params.margin * ewma
        self._timeout_of[key] = min(
            self._params.max_timeout_seconds,
            max(self._params.min_timeout_seconds, predicted),
        )

    def rule_installed(self, rule: "FlowRule", now: float) -> None:
        self._observe(rule.key, now)

    def rule_matched(self, rule: "FlowRule", now: float) -> None:
        self._observe(rule.key, now)

    def expiry_reason(self, rule: "FlowRule", now: float) -> Optional[RemovalReason]:
        if now - rule.last_matched_at > self._timeout_of.get(rule.key, self._default):
            return RemovalReason.IDLE_TIMEOUT
        return None

    def timeout_bounds(self) -> Optional[Tuple[float, float]]:
        # Per-key learned timeouts, and the match/install hooks mutate the
        # predictor: batching would change what the predictor observes.
        return None


# -- factories (wired into the registry) -------------------------------------


def build_static_idle(config: FlowTableConfig, params: StaticIdleParams) -> StaticIdlePolicy:
    """``static-idle`` from params, inheriting the config's idle timeout."""
    idle = params.idle_timeout_seconds
    return StaticIdlePolicy(config.idle_timeout_seconds if idle is None else idle)


def build_static_hard(config: FlowTableConfig, params: StaticHardParams) -> StaticHardPolicy:
    """``static-hard`` from params, inheriting the config's hard timeout."""
    hard = params.hard_timeout_seconds
    if hard is None:
        hard = config.hard_timeout_seconds
    if hard is None:
        hard = DEFAULT_HARD_TIMEOUT_SECONDS
    return StaticHardPolicy(hard)


def build_idle_hard(config: FlowTableConfig, params: IdleHardParams) -> IdleHardHybridPolicy:
    """``idle-hard-hybrid`` from params, inheriting the config's timeouts."""
    idle = params.idle_timeout_seconds
    if idle is None:
        idle = config.idle_timeout_seconds
    hard = params.hard_timeout_seconds
    if hard is None:
        hard = config.hard_timeout_seconds
    if hard is None:
        hard = max(DEFAULT_HARD_TIMEOUT_SECONDS, idle)
    return IdleHardHybridPolicy(idle, hard)


def build_lru(config: FlowTableConfig, params: LruParams) -> TableTimeoutPolicy:
    """``lru``: the timeout-free base policy."""
    return TableTimeoutPolicy()


def build_adaptive(config: FlowTableConfig, params: AdaptiveParams) -> AdaptiveTimeoutPolicy:
    """``adaptive``: the inter-arrival predictor seeded with the config's idle timeout."""
    return AdaptiveTimeoutPolicy(params, default_timeout_seconds=config.idle_timeout_seconds)
