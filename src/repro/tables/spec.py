"""Spec-level description of finite flow tables.

A :class:`TableSpec` is the declarative overlay a scenario puts on top of
the system config's :class:`~repro.common.config.FlowTableConfig`: which
capacity to give every edge switch, which registered timeout/eviction
policy to run, and the policy's raw params.  Like the other registry-backed
specs it is frozen, JSON-round-trippable, and resolves its registry entry
lazily, so specs referencing third-party policies can be built before the
plugin module is imported.

Fields left at ``None`` inherit the underlying config's value, which is
what lets presets say just "capacity 256, idle-hard-hybrid" without
restating every timeout knob.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.common.config import FlowTableConfig, LazyCtrlConfig
from repro.common.errors import ConfigurationError
from repro.common.serialize import to_jsonable
from repro.tables.registry import TablePolicyEntry, get_table_policy


@dataclass(frozen=True, slots=True)
class TableSpec:
    """Finite-table overlay: capacity, policy name, and policy params.

    ``capacity`` / ``idle_timeout_seconds`` / ``hard_timeout_seconds`` /
    ``sweep_interval_seconds`` override the corresponding
    :class:`~repro.common.config.FlowTableConfig` fields when set; ``policy``
    names an entry of :mod:`repro.tables.registry` and ``params`` is the raw
    mapping validated into that policy's params dataclass when tables are
    built.
    """

    capacity: Optional[int] = None
    policy: str = "static-idle"
    params: Dict[str, Any] = field(default_factory=dict)
    idle_timeout_seconds: Optional[float] = None
    hard_timeout_seconds: Optional[float] = None
    sweep_interval_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.policy or not self.policy.strip():
            raise ConfigurationError("table policy must be a non-empty string")
        if self.capacity is not None and self.capacity <= 0:
            raise ConfigurationError("table capacity must be positive")
        object.__setattr__(self, "params", dict(to_jsonable(dict(self.params))))

    # -- registry resolution -------------------------------------------------

    def entry(self) -> TablePolicyEntry:
        """The registry entry this spec references (raises on unknown policy)."""
        return get_table_policy(self.policy)

    def resolved_params(self) -> Any:
        """The params dict validated into the policy's params dataclass."""
        return self.entry().make_params(self.params)

    # -- application ---------------------------------------------------------

    def apply(self, config: LazyCtrlConfig) -> LazyCtrlConfig:
        """``config`` with this overlay folded into its ``flow_table``.

        The eviction batch is clamped to the (possibly much smaller) new
        capacity so a preset shrinking the table never trips the
        batch-exceeds-capacity validation.
        """
        table = config.flow_table
        capacity = table.capacity if self.capacity is None else self.capacity
        updated = FlowTableConfig(
            capacity=capacity,
            idle_timeout_seconds=(
                table.idle_timeout_seconds
                if self.idle_timeout_seconds is None
                else self.idle_timeout_seconds
            ),
            hard_timeout_seconds=(
                table.hard_timeout_seconds
                if self.hard_timeout_seconds is None
                else self.hard_timeout_seconds
            ),
            eviction_batch=min(table.eviction_batch, capacity),
            sweep_interval_seconds=(
                table.sweep_interval_seconds
                if self.sweep_interval_seconds is None
                else self.sweep_interval_seconds
            ),
            policy=self.policy,
            policy_params=self.params,
        )
        return dataclasses.replace(config, flow_table=updated)
