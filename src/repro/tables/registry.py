"""The pluggable flow-table timeout/eviction policy registry.

Mirrors the traffic/topology/control-plane registries: a table policy is a
named pair of

* a frozen **params dataclass** (its knobs, JSON-shaped), and
* a **factory** that turns a :class:`~repro.common.config.FlowTableConfig`
  plus validated params into a fresh
  :class:`~repro.tables.policies.TableTimeoutPolicy` instance;

registered under a short name (``"static-idle"``, ``"adaptive"``, ...) with
:func:`register_table_policy`.  Third-party policies plug in with the same
decorator from their own modules.  :class:`~repro.common.config.FlowTableConfig`
references a policy purely by name plus a plain params dict, which keeps
scenario specs JSON-serializable, and every :class:`~repro.datastructures.flow_table.FlowTable`
builds its **own** policy instance via :func:`build_policy`, so stateful
policies (e.g. the adaptive timeout predictor) never share learned state
across switches or systems.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, List, Mapping, Optional

from repro.common.config import FlowTableConfig
from repro.common.registry import (
    NamedRegistry,
    make_entry_params,
    params_field_names,
    require_params_dataclass,
)
from repro.tables.policies import TableTimeoutPolicy

#: Builds one policy instance from the owning table's config and validated
#: params.  Called once per table, so returning a fresh instance is required.
TablePolicyFactory = Callable[[FlowTableConfig, Any], TableTimeoutPolicy]


@dataclasses.dataclass(frozen=True, slots=True)
class TablePolicyEntry:
    """One registered flow-table timeout/eviction policy."""

    name: str
    factory: TablePolicyFactory
    params_type: type
    label: str
    description: str = ""

    def param_names(self) -> frozenset:
        """Names of the knobs this policy's params dataclass accepts."""
        return params_field_names(self.params_type)

    def make_params(self, params: Optional[Mapping[str, Any]] = None) -> Any:
        """Validate a raw params mapping into this policy's params dataclass.

        Raises :class:`~repro.common.errors.ConfigurationError` naming any
        unknown or missing key.
        """
        return make_entry_params(
            self.params_type, params, path=f"table policy {self.name!r} params"
        )

    def build(
        self,
        config: FlowTableConfig,
        params: Optional[Mapping[str, Any]] = None,
    ) -> TableTimeoutPolicy:
        """Build a fresh policy instance for one table."""
        return self.factory(config, self.make_params(params))


_REGISTRY: NamedRegistry[TablePolicyEntry] = NamedRegistry(
    kind="table policy",
    name_label="table-policy name",
    known_label="registered policies",
)


def register_table_policy(
    name: str,
    *,
    params: type,
    label: str | None = None,
    description: str = "",
    replace: bool = False,
) -> Callable[[TablePolicyFactory], TablePolicyFactory]:
    """Register a table-policy factory under ``name``.

    Use as a decorator on a factory taking ``(config, params)`` — the owning
    table's :class:`~repro.common.config.FlowTableConfig` and an instance of
    the ``params`` dataclass — and returning a fresh
    :class:`~repro.tables.policies.TableTimeoutPolicy`::

        @dataclasses.dataclass(frozen=True)
        class RandomEvictParams:
            seed: int = 1

        @register_table_policy("random-evict", params=RandomEvictParams)
        def build_random_evict(config, params):
            return RandomEvictPolicy(params.seed)
    """
    _REGISTRY.validate_name(name)
    require_params_dataclass("table policy", name, params)

    def decorator(factory: TablePolicyFactory) -> TablePolicyFactory:
        _REGISTRY.add(
            name,
            TablePolicyEntry(
                name=name,
                factory=factory,
                params_type=params,
                label=label or name,
                description=description,
            ),
            replace=replace,
        )
        return factory

    return decorator


def unregister_table_policy(name: str) -> None:
    """Remove a registered table policy (primarily for tests)."""
    _REGISTRY.remove(name)


def get_table_policy(name: str) -> TablePolicyEntry:
    """Look a registered table policy up by name."""
    return _REGISTRY.get(name)


def available_table_policies() -> List[TablePolicyEntry]:
    """All registered table policies, sorted by name."""
    return _REGISTRY.available()


def build_policy(config: FlowTableConfig) -> TableTimeoutPolicy:
    """Build the policy instance a table with ``config`` should run.

    Resolves ``config.policy`` in the registry and validates
    ``config.policy_params`` against that policy's params dataclass.
    """
    return get_table_policy(config.policy).build(config, config.policy_params)


def _register_builtin_table_policies() -> None:
    """Register the built-in policies (idempotent; called at import time)."""
    if "static-idle" in _REGISTRY:
        return
    from repro.tables.policies import (
        AdaptiveParams,
        IdleHardParams,
        LruParams,
        StaticHardParams,
        StaticIdleParams,
        build_adaptive,
        build_idle_hard,
        build_lru,
        build_static_hard,
        build_static_idle,
    )

    register_table_policy(
        "static-idle",
        params=StaticIdleParams,
        label="Static idle timeout",
        description="Fixed idle timeout; rules expire once unmatched that long",
    )(build_static_idle)

    register_table_policy(
        "static-hard",
        params=StaticHardParams,
        label="Static hard timeout",
        description="Fixed hard timeout; rules expire a set time after install",
    )(build_static_hard)

    register_table_policy(
        "idle-hard-hybrid",
        params=IdleHardParams,
        label="Idle + hard hybrid",
        description="OpenFlow's standard pair: idle timeout with a hard upper bound",
    )(build_idle_hard)

    register_table_policy(
        "lru",
        params=LruParams,
        label="LRU eviction only",
        description="No timeouts; capacity eviction of least-recently matched rules",
    )(build_lru)

    register_table_policy(
        "adaptive",
        params=AdaptiveParams,
        label="Adaptive inter-arrival predictor",
        description="Tunes per-flow idle timeouts from observed inter-arrival gaps",
    )(build_adaptive)


_register_builtin_table_policies()
