"""Reproduction of *LazyCtrl: Scalable Network Control for Cloud Data Centers* (ICDCS 2015).

The library implements the paper's hybrid control plane — switch grouping by
traffic affinity (SGI), Local Control Groups with Bloom-filter G-FIBs, and a
lazy central controller — together with every substrate the evaluation
needs: a multi-tenant data-center model, trace generators, a baseline
reactive OpenFlow controller, a latency model and a scenario runner.

The public surface is the Scenario API: describe an experiment declaratively
with a :class:`ScenarioSpec` (topology + traffic + control planes +
schedule), run it with :class:`ScenarioRunner`, and get back a serializable
:class:`ScenarioResult`.  Control-plane designs are pluggable: register your
own with :func:`register_control_plane` and reference it by name in a spec.

Quickstart
----------
>>> from repro import ScenarioRunner, get_preset
>>> spec = get_preset("paper-fig7").specs()[0]           # doctest: +SKIP
>>> result = ScenarioRunner().run(spec)                  # doctest: +SKIP
>>> result.reduction("openflow", "lazyctrl-dynamic")     # doctest: +SKIP

The same experiment from the command line::

    python -m repro run paper-fig7
    python -m repro list-scenarios

The legacy helpers remain: :func:`quickstart` runs the headline comparison
in one call, and :class:`DayLongExperiment` drives a pre-built trace.
"""

from repro.churn.spec import ChurnSpec
from repro.common.config import LazyCtrlConfig
from repro.core.experiment import DayLongExperiment, DayLongExperimentResult
from repro.core.presets import Preset, get_preset, list_presets
from repro.core.registry import (
    ControlPlane,
    ControlPlaneEntry,
    available_control_planes,
    get_control_plane,
    register_control_plane,
)
from repro.core.runner import ScenarioResult, ScenarioRunner
from repro.core.scenario import (
    FailureInjectionSpec,
    ScenarioSpec,
    ScheduleSpec,
    TopologySpec,
    TraceSpec,
)
from repro.core.system import LazyCtrlSystem, OpenFlowSystem
from repro.obs import (
    EventTracer,
    JsonlEventListener,
    MetricsTimeline,
    TimelineResult,
    TraceOptions,
    render_timeline,
    write_chrome_trace,
)
from repro.partitioning.sgi import Grouping, SgiGrouper
from repro.perf import PerfRecorder, PerfSnapshot
from repro.topology.builder import TopologyProfile, build_multi_tenant_datacenter
from repro.topology.registry import (
    TopologyEntry,
    available_topologies,
    get_topology,
    register_topology,
)
from repro.traffic.mix import TrafficComponentSpec, TrafficMixSpec
from repro.traffic.realistic import RealisticTraceGenerator, RealisticTraceProfile
from repro.traffic.registry import (
    TrafficModelEntry,
    available_traffic_models,
    get_traffic_model,
    register_traffic_model,
)

__version__ = "1.4.0"

__all__ = [
    "ChurnSpec",
    "ControlPlane",
    "ControlPlaneEntry",
    "DayLongExperiment",
    "DayLongExperimentResult",
    "EventTracer",
    "FailureInjectionSpec",
    "Grouping",
    "JsonlEventListener",
    "LazyCtrlConfig",
    "LazyCtrlSystem",
    "MetricsTimeline",
    "OpenFlowSystem",
    "PerfRecorder",
    "PerfSnapshot",
    "Preset",
    "RealisticTraceGenerator",
    "RealisticTraceProfile",
    "ScenarioResult",
    "ScenarioRunner",
    "ScenarioSpec",
    "ScheduleSpec",
    "SgiGrouper",
    "TimelineResult",
    "TopologyEntry",
    "TopologyProfile",
    "TopologySpec",
    "TraceOptions",
    "TraceSpec",
    "TrafficComponentSpec",
    "TrafficMixSpec",
    "TrafficModelEntry",
    "available_control_planes",
    "available_topologies",
    "available_traffic_models",
    "build_multi_tenant_datacenter",
    "get_control_plane",
    "get_preset",
    "get_topology",
    "get_traffic_model",
    "list_presets",
    "quickstart",
    "register_control_plane",
    "register_topology",
    "register_traffic_model",
    "render_timeline",
    "write_chrome_trace",
    "__version__",
]


def quickstart(
    *,
    switch_count: int = 48,
    host_count: int = 600,
    total_flows: int = 20_000,
    seed: int = 2015,
) -> DayLongExperimentResult:
    """Run a small end-to-end experiment and return the workload comparison.

    Builds a multi-tenant data center, generates a day-long skewed trace,
    and replays it against the OpenFlow baseline and both LazyCtrl variants.
    Sized to finish in well under a minute on a laptop.  This is a thin
    wrapper over the Scenario API; see :class:`ScenarioSpec` for the full
    declarative surface.
    """
    from repro.core.presets import default_grouping_config

    spec = ScenarioSpec(
        name="quickstart",
        topology=TopologyProfile(switch_count=switch_count, host_count=host_count, seed=seed),
        traffic=TraceSpec.realistic(total_flows=total_flows, seed=seed),
        systems=("openflow", "lazyctrl-static", "lazyctrl-dynamic"),
        config=default_grouping_config(switch_count, seed=seed),
    )
    result = ScenarioRunner().run(spec)
    return DayLongExperimentResult(runs={run.label: run for run in result.runs.values()})
