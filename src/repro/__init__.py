"""Reproduction of *LazyCtrl: Scalable Network Control for Cloud Data Centers* (ICDCS 2015).

The library implements the paper's hybrid control plane — switch grouping by
traffic affinity (SGI), Local Control Groups with Bloom-filter G-FIBs, and a
lazy central controller — together with every substrate the evaluation
needs: a multi-tenant data-center model, trace generators, a baseline
reactive OpenFlow controller, a latency model and an experiment harness.

Quickstart
----------
>>> from repro import quickstart
>>> result = quickstart()                       # doctest: +SKIP
>>> result.reduction("OpenFlow", "LazyCtrl (dynamic)")  # doctest: +SKIP
"""

from repro.common.config import LazyCtrlConfig
from repro.core.experiment import DayLongExperiment, DayLongExperimentResult
from repro.core.system import LazyCtrlSystem, OpenFlowSystem
from repro.partitioning.sgi import Grouping, SgiGrouper
from repro.topology.builder import TopologyProfile, build_multi_tenant_datacenter
from repro.traffic.realistic import RealisticTraceGenerator, RealisticTraceProfile

__version__ = "1.0.0"

__all__ = [
    "DayLongExperiment",
    "DayLongExperimentResult",
    "Grouping",
    "LazyCtrlConfig",
    "LazyCtrlSystem",
    "OpenFlowSystem",
    "RealisticTraceGenerator",
    "RealisticTraceProfile",
    "SgiGrouper",
    "TopologyProfile",
    "build_multi_tenant_datacenter",
    "quickstart",
    "__version__",
]


def quickstart(
    *,
    switch_count: int = 48,
    host_count: int = 600,
    total_flows: int = 20_000,
    seed: int = 2015,
) -> DayLongExperimentResult:
    """Run a small end-to-end experiment and return the workload comparison.

    Builds a multi-tenant data center, generates a day-long skewed trace,
    and replays it against the OpenFlow baseline and both LazyCtrl variants.
    Sized to finish in well under a minute on a laptop.
    """
    from repro.common.config import GroupingConfig

    network = build_multi_tenant_datacenter(
        TopologyProfile(switch_count=switch_count, host_count=host_count, seed=seed)
    )
    trace = RealisticTraceGenerator(
        network, RealisticTraceProfile(total_flows=total_flows, seed=seed)
    ).generate(name="quickstart")
    # Keep roughly half a dozen groups regardless of the (small) topology so
    # inter-group traffic exists, as it does at the paper's full scale.
    config = LazyCtrlConfig(grouping=GroupingConfig(group_size_limit=max(4, switch_count // 6), random_seed=seed))
    experiment = DayLongExperiment(trace, config=config)
    return experiment.run_all()
