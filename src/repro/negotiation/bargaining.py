"""Dynamic group-size negotiation (paper Appendix C).

The paper proposes, as an alternative to an empirically fixed group-size
limit, a *game-based* negotiation (a modified Rubinstein bargaining model)
between the controller and the switches:

* the **controller** prefers *larger* groups, because fewer/bigger groups
  mean less inter-group traffic and therefore less controller workload;
* the **switches** prefer *smaller* groups, because a larger group means
  more G-FIB Bloom filters, more state to disseminate, and more intra-group
  control work on the switch side.

The two sides alternate offers for the group-size limit.  Each side's
utility is a normalized score in ``[0, 1]`` of how close the offer is to its
ideal value, and each round of delay discounts future utility by that side's
*patience* (discount factor) — the standard Rubinstein setup.  A side accepts
as soon as the utility of the offer on the table is at least the discounted
utility it could expect from continuing, which in the classical model leads
to (near-)immediate agreement at a split determined by the two discount
factors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common.errors import NegotiationError


@dataclass(frozen=True, slots=True)
class BargainingConfig:
    """Parameters of one negotiation session."""

    minimum_group_size: int = 8
    maximum_group_size: int = 512
    controller_discount: float = 0.9
    switch_discount: float = 0.8
    max_rounds: int = 64

    def __post_init__(self) -> None:
        if not 1 <= self.minimum_group_size <= self.maximum_group_size:
            raise NegotiationError("group size bounds must satisfy 1 <= min <= max")
        for name in ("controller_discount", "switch_discount"):
            value = getattr(self, name)
            if not 0.0 < value < 1.0:
                raise NegotiationError(f"{name} must lie strictly between 0 and 1")
        if self.max_rounds < 1:
            raise NegotiationError("max_rounds must be at least 1")


@dataclass(frozen=True, slots=True)
class Offer:
    """One offer in the alternating-offers game."""

    round_index: int
    proposer: str
    group_size_limit: int
    controller_utility: float
    switch_utility: float
    accepted: bool


@dataclass(frozen=True, slots=True)
class NegotiationOutcome:
    """The agreed group-size limit and the full offer history."""

    agreed_group_size: int
    rounds: int
    offers: List[Offer]


class GroupSizeBargainer:
    """Modified Rubinstein bargaining over the group-size limit."""

    def __init__(self, config: BargainingConfig | None = None) -> None:
        self._config = config or BargainingConfig()

    @property
    def config(self) -> BargainingConfig:
        """The negotiation parameters in force."""
        return self._config

    # -- utilities ------------------------------------------------------------

    def controller_utility(self, group_size: int) -> float:
        """Controller utility: grows with the group size (normalized to [0, 1])."""
        cfg = self._config
        self._check_bounds(group_size)
        span = max(1, cfg.maximum_group_size - cfg.minimum_group_size)
        return (group_size - cfg.minimum_group_size) / span

    def switch_utility(self, group_size: int, *, memory_capacity_entries: int | None = None) -> float:
        """Switch utility: falls with the group size (normalized to [0, 1]).

        ``memory_capacity_entries`` optionally caps the acceptable size: a
        group larger than what the switch's TCAM/SRAM can summarize yields
        zero utility, which models the real-time self-evaluated data the
        paper lets switches bargain with.
        """
        cfg = self._config
        self._check_bounds(group_size)
        if memory_capacity_entries is not None and group_size > memory_capacity_entries:
            return 0.0
        span = max(1, cfg.maximum_group_size - cfg.minimum_group_size)
        return (cfg.maximum_group_size - group_size) / span

    def _check_bounds(self, group_size: int) -> None:
        cfg = self._config
        if not cfg.minimum_group_size <= group_size <= cfg.maximum_group_size:
            raise NegotiationError(
                f"group size {group_size} outside [{cfg.minimum_group_size}, {cfg.maximum_group_size}]"
            )

    # -- the alternating-offers game ------------------------------------------------

    def negotiate(self, *, switch_memory_capacity_entries: int | None = None) -> NegotiationOutcome:
        """Run the alternating-offers game until an offer is accepted.

        The controller proposes first.  Each proposer offers the size that
        maximizes its own utility subject to giving the responder at least
        the utility the responder could expect by delaying one round (its
        discounted best case).  This is the textbook sub-game-perfect
        strategy, adapted to the discrete size grid.
        """
        cfg = self._config
        offers: List[Offer] = []
        sizes = list(range(cfg.minimum_group_size, cfg.maximum_group_size + 1))

        # Effective upper bound when switches report a hard memory cap.
        if switch_memory_capacity_entries is not None:
            sizes = [size for size in sizes if size <= switch_memory_capacity_entries]
            if not sizes:
                raise NegotiationError("switch memory capacity admits no feasible group size")

        controller_turn = True
        responder_best_controller = 1.0  # best utility the controller could ever get
        responder_best_switch = 1.0      # best utility the switches could ever get
        agreed: int | None = None

        for round_index in range(cfg.max_rounds):
            if controller_turn:
                # Switches would get at most `responder_best_switch`, discounted
                # one round, by rejecting; offer the largest size that still
                # clears that bar.
                threshold = responder_best_switch * cfg.switch_discount
                acceptable = [
                    size
                    for size in sizes
                    if self.switch_utility(size, memory_capacity_entries=switch_memory_capacity_entries) >= threshold
                ]
                proposal = max(acceptable) if acceptable else min(sizes)
                switch_util = self.switch_utility(proposal, memory_capacity_entries=switch_memory_capacity_entries)
                accepted = switch_util >= threshold - 1e-12
                offers.append(
                    Offer(
                        round_index=round_index,
                        proposer="controller",
                        group_size_limit=proposal,
                        controller_utility=self.controller_utility(proposal),
                        switch_utility=switch_util,
                        accepted=accepted,
                    )
                )
                if accepted:
                    agreed = proposal
                    break
                responder_best_controller *= cfg.controller_discount
            else:
                threshold = responder_best_controller * cfg.controller_discount
                acceptable = [size for size in sizes if self.controller_utility(size) >= threshold]
                proposal = min(acceptable) if acceptable else max(sizes)
                controller_util = self.controller_utility(proposal)
                accepted = controller_util >= threshold - 1e-12
                offers.append(
                    Offer(
                        round_index=round_index,
                        proposer="switches",
                        group_size_limit=proposal,
                        controller_utility=controller_util,
                        switch_utility=self.switch_utility(
                            proposal, memory_capacity_entries=switch_memory_capacity_entries
                        ),
                        accepted=accepted,
                    )
                )
                if accepted:
                    agreed = proposal
                    break
                responder_best_switch *= cfg.switch_discount
            controller_turn = not controller_turn

        if agreed is None:
            # The game always converges in the classical model; the cap is a
            # safety net for extreme discount values.
            agreed = offers[-1].group_size_limit if offers else cfg.minimum_group_size
        return NegotiationOutcome(agreed_group_size=agreed, rounds=len(offers), offers=offers)
