"""Dynamic group-size negotiation (modified Rubinstein bargaining, Appendix C)."""

from repro.negotiation.bargaining import (
    BargainingConfig,
    GroupSizeBargainer,
    NegotiationOutcome,
    Offer,
)

__all__ = [
    "BargainingConfig",
    "GroupSizeBargainer",
    "NegotiationOutcome",
    "Offer",
]
