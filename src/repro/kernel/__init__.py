"""Columnar replay kernel — the vectorized per-shard fast path.

This package is the optimization layer behind ``ExecutionSpec.kernel ==
"vectorized"``: each replay batch (the flows between two periodic ticks) is
re-expressed as parallel numpy arrays and classified against a snapshot of
per-switch L-FIB/flow-table state.  Flows whose handling is a pure function
of that snapshot (local delivery, live flow-table hits, intra-group
forwarding) are accounted in bulk; everything that needs the control plane
(packet-in, table pressure, expired rules, departed endpoints) falls back to
the scalar per-flow path.  The kernel is *not* a second semantics: counters,
timelines, latency totals and link matrices stay bit-identical to the scalar
replayer, and the equivalence suite in ``tests/test_kernel_equivalence.py``
gates exactly that.

numpy is deliberately a soft dependency: importing :mod:`repro` (and running
any scalar replay) never imports this package.  Requesting
``kernel=vectorized`` without numpy installed raises a
:class:`~repro.common.errors.ConfigurationError` instead of an ImportError
deep inside a replay.
"""

from __future__ import annotations

from importlib import util as _importlib_util

from repro.common.errors import ConfigurationError
from repro.perf.recorder import NULL_RECORDER

__all__ = ["build_batch_handler", "numpy_available", "require_numpy"]


def numpy_available() -> bool:
    """Whether numpy can be imported (without importing it)."""
    return _importlib_util.find_spec("numpy") is not None


def require_numpy() -> None:
    """Raise a clear configuration error when numpy is missing."""
    if not numpy_available():
        raise ConfigurationError(
            "execution kernel 'vectorized' requires numpy, which is not "
            "installed; install the package (pip install numpy) or run with "
            "kernel=scalar"
        )


def build_batch_handler(plane, *, perf=NULL_RECORDER):
    """Build the vectorized batch handler for one control plane.

    Returns a callable accepting one replay batch (a list of
    :class:`~repro.traffic.flow.FlowRecord`), or ``None`` when ``plane`` is
    not a plane type the kernel knows how to accelerate (custom control
    planes registered by tests keep the scalar path).  Raises
    :class:`~repro.common.errors.ConfigurationError` when numpy is missing.
    """
    require_numpy()
    from repro.kernel.columnar import build_kernel

    return build_kernel(plane, perf=perf)
