"""The columnar batch engine behind ``kernel=vectorized``.

One kernel instance wraps one control plane for one replay and is invoked by
:class:`~repro.traffic.replay.TraceReplayer` once per batch (the flows
between two periodic ticks, within one stream chunk).  The batch is
columnarized into parallel numpy arrays, grouped by (src host, dst host)
pair, and every pair is classified against the *current* dataplane state:

* ``LOCAL`` — no flow rule, destination in the ingress L-FIB;
* ``HIT`` — a live ``FORWARD_LOCAL``/``ENCAP_TO_SWITCH`` rule that stays
  alive through every arrival of the pair (each lookup refreshes the idle
  clock, so liveness is a chain condition over the pair's arrival gaps);
* ``INTRA`` — no rule, not local, the G-FIB names candidate peers
  (LazyCtrl only);
* ``DEPARTED`` — an endpoint no longer exists;
* everything else — ``FALLBACK``: the flows run the scalar
  ``handle_flow_arrival`` path one by one, in arrival order.

The contract is bit-identity with the scalar replayer, not approximation.
The load-bearing facts, each mirrored from the scalar code it replaces:

* controllers install rules only for the packet's own flow key on its
  ingress switch, so the single cross-pair hazard is capacity eviction:
  when a switch's resident rules plus the batch's potential new-key
  installs reach capacity, every ``HIT`` pair on that switch is demoted to
  ``FALLBACK`` (per-switch slack guard) and replays scalar in true order;
* bucket sums in :class:`~repro.simulation.metrics.LatencyRecorder` are
  sequential left folds in arrival order; the kernel replays the identical
  fold via ``record_bulk`` with the per-flow ``first`` and
  ``steady * (packet_count - 1)`` terms interleaved exactly as the scalar
  ``record`` calls would produce them (``numpy`` float64 arithmetic is
  IEEE-754 double arithmetic, the same operations in the same order);
* ``numpy.floor_divide`` on float64 matches CPython's float ``//`` bit for
  bit, so bucket indices agree with ``int(timestamp // bucket_seconds)``;
* the intensity matrix accumulates ``+= 1.0`` per flow: the final float is
  a function of the *number* of adds only, but dict insertion order feeds
  later float folds (``merge``/``pairs``), so the kernel suppresses the
  scalar path's live recording and replays all pairs in first-arrival
  order through ``record_many``;
* integer counters are order-free and applied as batch sums.

The one deliberate divergence, invisible to any result surface: the global
``Packet`` id counter advances less, because vectorized flows never build a
``Packet`` object.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.packets import FlowKey
from repro.datastructures.flow_table import ActionType
from repro.obs.events import LinkCongestedEvent
from repro.obs.timeline import _latency_bin
from repro.perf.recorder import NULL_RECORDER

# Pair classes.
_FALLBACK = 0
_LOCAL = 1
_HIT = 2
_INTRA = 3
_DEPARTED = 4

#: Host-id packing base for (src, dst) pair codes; ids are far below this.
_CODE_BASE = 1 << 31


class _NullLatencyRecorder:
    """Swap-in for ``plane.latency_recorder`` while fallback flows replay.

    The kernel re-records every flow of the batch (scalar and vectorized
    alike) through one in-order bulk fold, so the scalar path's own record
    calls must not double-count.
    """

    __slots__ = ()

    def record(self, timestamp: float, latency_ms: float, *, count: int = 1) -> None:
        return None


class _NullIntensityMatrix:
    """Swap-in for ``grouping_manager.recent_matrix`` during fallback replay."""

    __slots__ = ()

    def record(self, src_switch: int, dst_switch: int, amount: float = 1.0) -> None:
        return None


_NULL_LATENCY = _NullLatencyRecorder()
_NULL_INTENSITY = _NullIntensityMatrix()


def _probe_gfib(gfib, mac):
    """GroupFib.query's membership computation, without its cache/counters.

    Classification needs each pair's candidate set up front, but the real
    query memoizes results and counts hits — state the execution stage
    accounts for separately (wholesale when no cache clear is possible, by
    replaying the real queries in arrival order otherwise).  Filters cannot
    change mid-batch (dissemination runs at ticks, and the kernel is only
    wired for churn-free replays), so this probe returns exactly what every
    in-batch query for ``mac`` will.
    """
    needle = mac.to_bytes()
    return tuple(
        sorted(switch_id for switch_id, bloom in gfib._filters.items() if needle in bloom)
    )


class _PairStatic:
    """Per-(src, dst) host-pair facts that cannot change while the kernel runs.

    The kernel is only wired up for churn-free replays (no coupled engine),
    so host placement and L-FIB membership are run-static; a cheap topology
    token guards the assumption and clears the memo if it ever breaks.

    Resolved objects (ingress switch, its rules dict, timeout bounds, G-FIB)
    are pinned here so the steady-state classification of a pair costs one
    dict ``get`` plus a branch.  The G-FIB probe result is memoized per
    filter generation: ``GroupFib.version`` only moves on dissemination
    events (churn host-moves, regrouping), so between them the candidate
    set — and everything derived from it — is a constant of the pair.
    """

    __slots__ = (
        "departed",
        "src_switch_id",
        "dst_switch_id",
        "key",
        "dst_mac",
        "is_local",
        "switch",
        "table",
        "rules",
        "bounds",
        "gfib",
        "gfib_version",
        "candidates",
        "fp_targets",
        "intra_first",
    )

    def __init__(
        self,
        *,
        departed,
        src_switch_id=-1,
        dst_switch_id=-1,
        key=None,
        dst_mac=None,
        is_local=False,
        switch=None,
        table=None,
        rules=None,
        bounds=None,
        gfib=None,
    ):
        self.departed = departed
        self.src_switch_id = src_switch_id
        self.dst_switch_id = dst_switch_id
        self.key = key
        self.dst_mac = dst_mac
        self.is_local = is_local
        self.switch = switch
        self.table = table
        self.rules = rules
        self.bounds = bounds
        self.gfib = gfib
        self.gfib_version = -1
        self.candidates = ()
        self.fp_targets = ()
        self.intra_first = 0.0


class ColumnarReplayKernel:
    """Vectorized batch handler for one LazyCtrl or OpenFlow plane."""

    def __init__(self, plane, switches: Dict[int, object], *, lazyctrl: bool, perf=NULL_RECORDER) -> None:
        self._plane = plane
        self._switches = switches
        self._lazyctrl = lazyctrl
        self._perf = perf
        self._pair_static: Dict[int, _PairStatic] = {}
        self._bounds_cache: Dict[int, Optional[Tuple[float, float]]] = {}
        self._topology_token: Optional[Tuple[int, int]] = None
        self._min_coverage = 1.0

    # -- helpers ---------------------------------------------------------------

    def _bounds(self, table) -> Optional[Tuple[float, float]]:
        cached = self._bounds_cache.get(id(table))
        if cached is None and id(table) not in self._bounds_cache:
            cached = table.policy.timeout_bounds()
            self._bounds_cache[id(table)] = cached
        return cached

    def _current_topology_token(self) -> Tuple[int, int]:
        versions = 0
        for switch in self._switches.values():
            versions += switch.lfib.version
        return (self._plane.network.host_count(), versions)

    def _pair_info(self, code: int) -> _PairStatic:
        network = self._plane.network
        src_host = network.host_if_present(code // _CODE_BASE)
        dst_host = network.host_if_present(code % _CODE_BASE)
        if src_host is None or dst_host is None:
            info = _PairStatic(departed=True)
        else:
            switch = self._switches[src_host.switch_id]
            table = switch.flow_table
            info = _PairStatic(
                departed=False,
                src_switch_id=src_host.switch_id,
                dst_switch_id=dst_host.switch_id,
                key=FlowKey(src_mac=src_host.mac, dst_mac=dst_host.mac, tenant_id=src_host.tenant_id),
                dst_mac=dst_host.mac,
                is_local=switch.lfib.lookup(dst_host.mac) is not None,
                switch=switch,
                table=table,
                rules=table._rules,
                bounds=self._bounds(table),
                gfib=switch.gfib if self._lazyctrl else None,
            )
        self._pair_static[code] = info
        return info

    def _scalar_batch(self, batch) -> None:
        handle = self._plane.handle_flow_arrival
        for flow in batch:
            handle(flow, flow.start_time)
        perf = self._perf
        if perf.enabled:
            perf.count("kernel.batches", 1)
            perf.count("kernel.batches_bypassed", 1)
            perf.count("kernel.flows_fallback", len(batch))
            self._note_coverage(0, len(batch))

    def _note_coverage(self, vectorized: int, total: int) -> None:
        if total <= 0:
            return
        coverage = vectorized / total
        if coverage < self._min_coverage:
            self._min_coverage = coverage
        self._perf.gauge("kernel.min_batch_coverage", self._min_coverage)

    # -- the batch entry point -------------------------------------------------

    def __call__(self, batch) -> None:
        n = len(batch)
        if n == 0:
            return
        plane = self._plane
        tracer = plane.tracer

        # Whole-batch bypass guards: situations the columnar path does not
        # model (rare in practice, always safe to replay scalar).
        if getattr(tracer, "_listeners", None):
            self._scalar_batch(batch)
            return
        for switch in self._switches.values():
            if switch.failed:
                self._scalar_batch(batch)
                return
        token = self._current_topology_token()
        if token != self._topology_token:
            if self._topology_token is not None:
                self._pair_static.clear()
            self._topology_token = token

        perf = self._perf
        with perf.timeit("kernel_classify"):
            state = self._classify(batch, n)
        if state is None:
            self._scalar_batch(batch)
            return
        with perf.timeit("kernel_fallback"):
            self._execute(batch, state)
        with perf.timeit("kernel_accumulate"):
            self._accumulate(state)

        if perf.enabled:
            fallback_flows = int(state["fallback_flow_count"])
            perf.count("kernel.batches", 1)
            perf.count("kernel.flows_vectorized", n - fallback_flows)
            perf.count("kernel.flows_fallback", fallback_flows)
            self._note_coverage(n - fallback_flows, n)

    # -- stage 1: columnarize + classify --------------------------------------

    def _classify(self, batch, n: int):
        src_ids = np.array([flow.src_host_id for flow in batch], dtype=np.int64)
        dst_ids = np.array([flow.dst_host_id for flow in batch], dtype=np.int64)
        times = np.array([flow.start_time for flow in batch], dtype=np.float64)
        pcs = np.array([flow.packet_count for flow in batch], dtype=np.int64)
        if src_ids.size and (int(src_ids.max()) >= _CODE_BASE or int(dst_ids.max()) >= _CODE_BASE):
            return None  # host ids beyond the packing base: replay scalar
        codes = src_ids * _CODE_BASE + dst_ids
        uniq, first_index, inverse, counts = np.unique(
            codes, return_index=True, return_inverse=True, return_counts=True
        )
        p = len(uniq)

        # Per-pair arrival structure (pairs are contiguous in a stable sort
        # by pair, each group staying in arrival order).
        order = np.argsort(inverse, kind="stable")
        sorted_inv = inverse[order]
        sorted_times = times[order]
        boundaries = np.concatenate(([0], np.cumsum(counts)[:-1]))
        first_t = sorted_times[boundaries].tolist()
        last_t = sorted_times[boundaries + counts - 1].tolist()
        if n > 1:
            diffs = sorted_times[1:] - sorted_times[:-1]
            same = sorted_inv[1:] == sorted_inv[:-1]
            padded = np.concatenate((np.where(same, diffs, 0.0), (0.0,)))
        else:
            padded = np.zeros(1, dtype=np.float64)
        max_gap = np.maximum.reduceat(padded, boundaries).tolist()
        counts_list = counts.tolist()

        plane = self._plane
        model = plane.latency_model
        local_ms = model.local_delivery_ms()
        hit_ms = model.flow_table_hit_ms()
        intra_steady_ms = model.intra_group_ms() if self._lazyctrl else 0.0
        lazyctrl = self._lazyctrl
        switches = self._switches

        infos: List[_PairStatic] = []
        cls: List[int] = []
        pair_first = [0.0] * p
        pair_steady = [0.0] * p
        hit_records: List[tuple] = []
        intra_records: List[tuple] = []
        local_pairs: List[int] = []
        hit_pairs_by_switch: Dict[int, List[int]] = {}
        new_keys_by_switch: Dict[int, int] = {}
        uniq_list = uniq.tolist()

        pair_static_get = self._pair_static.get
        pair_info = self._pair_info
        cls_append = cls.append
        infos_append = infos.append
        for g in range(p):
            code = uniq_list[g]
            info = pair_static_get(code)
            if info is None:
                info = pair_info(code)
            infos_append(info)
            if info.departed:
                cls_append(_DEPARTED)
                continue
            rule = info.rules.get(info.key)
            if rule is not None:
                alive = False
                bounds = info.bounds
                if bounds is not None:
                    kind = rule.action.kind
                    if kind is ActionType.FORWARD_LOCAL or kind is ActionType.ENCAP_TO_SWITCH:
                        idle, hard = bounds
                        alive = (
                            first_t[g] - rule.last_matched_at <= idle
                            and max_gap[g] <= idle
                            and last_t[g] - rule.installed_at <= hard
                        )
                if alive:
                    cls_append(_HIT)
                    pair_first[g] = hit_ms
                    pair_steady[g] = hit_ms
                    hit_records.append((g, rule, info.table))
                    hit_pairs_by_switch.setdefault(info.src_switch_id, []).append(g)
                else:
                    cls_append(_FALLBACK)
            elif info.is_local:
                cls_append(_LOCAL)
                pair_first[g] = local_ms
                pair_steady[g] = local_ms
                local_pairs.append(g)
            elif lazyctrl:
                gfib = info.gfib
                if info.gfib_version != gfib.version:
                    # Side-channel probe of the Bloom filters — same
                    # computation as GroupFib.query but touching neither the
                    # query cache nor its counters, whose aggregate evolution
                    # the execution stage replays.  The result is a constant
                    # of the pair until the next dissemination bumps the
                    # filter generation.
                    candidates = _probe_gfib(gfib, info.dst_mac)
                    info.candidates = candidates
                    info.gfib_version = gfib.version
                    if candidates:
                        info.intra_first = model.intra_group_ms(len(candidates))
                        info.fp_targets = tuple(
                            target for target in candidates
                            if switches[target].lfib.lookup(info.dst_mac) is None
                        )
                if info.candidates:
                    cls_append(_INTRA)
                    pair_first[g] = info.intra_first
                    pair_steady[g] = intra_steady_ms
                    intra_records.append((g, info))
                else:
                    cls_append(_FALLBACK)
                    new_keys_by_switch[info.src_switch_id] = (
                        new_keys_by_switch.get(info.src_switch_id, 0) + 1
                    )
            else:
                cls_append(_FALLBACK)
                new_keys_by_switch[info.src_switch_id] = (
                    new_keys_by_switch.get(info.src_switch_id, 0) + 1
                )

        # Per-switch slack guard: if this batch's potential new-key installs
        # can trigger eviction on a switch, every HIT pair there replays
        # scalar so eviction order and rule refreshes stay in true order.
        for switch_id, pair_list in hit_pairs_by_switch.items():
            pending = new_keys_by_switch.get(switch_id, 0)
            if not pending:
                continue
            table = switches[switch_id].flow_table
            if len(table._rules) + pending >= table.capacity:
                for g in pair_list:
                    cls[g] = _FALLBACK

        cls_arr = np.array(cls, dtype=np.int8)
        cls_flow = cls_arr[inverse]
        fallback_flow_idx = np.flatnonzero(cls_flow == _FALLBACK)
        vectorized_flow_idx = np.flatnonzero((cls_flow >= _LOCAL) & (cls_flow <= _INTRA))
        first_flow = np.array(pair_first, dtype=np.float64)[inverse]
        steady_flow = np.array(pair_steady, dtype=np.float64)[inverse]
        handled = cls_flow != _DEPARTED

        return {
            "n": n,
            "times": times,
            "pcs": pcs,
            "inverse": inverse,
            "first_index": first_index,
            "counts": counts_list,
            "last_t": last_t,
            "infos": infos,
            "cls": cls,
            "cls_flow": cls_flow,
            "fallback_flow_idx": fallback_flow_idx,
            "vectorized_flow_idx": vectorized_flow_idx,
            "fallback_flow_count": int(fallback_flow_idx.size),
            "first_flow": first_flow,
            "steady_flow": steady_flow,
            "handled": handled,
            "hit_records": hit_records,
            "intra_records": intra_records,
            "local_pairs": local_pairs,
            "fallback_pair_count": cls.count(_FALLBACK),
        }

    # -- stage 2: replay fallback flows (and meter, in true order) -------------

    def _execute(self, batch, state) -> None:
        plane = self._plane
        meter = plane._link_meter
        saved_recorder = plane.latency_recorder
        manager = plane.controller.grouping_manager if self._lazyctrl else None
        saved_matrix = manager.recent_matrix if manager is not None else None
        plane.latency_recorder = _NULL_LATENCY
        if manager is not None:
            manager.recent_matrix = _NULL_INTENSITY
        try:
            if meter is not None:
                self._walk_with_meter(batch, state, meter)
            elif self._lazyctrl and not self._bulk_gfib_accounting(state):
                # A G-FIB query cache could overflow mid-batch: replay every
                # intra-group query (and the fallbacks) in true arrival order
                # so the wholesale cache clear lands exactly where the scalar
                # replayer would put it.
                cls_flow = state["cls_flow"]
                indices = np.flatnonzero((cls_flow == _FALLBACK) | (cls_flow == _INTRA))
                self._walk_plain(batch, state, indices.tolist())
            else:
                self._walk_plain(batch, state, state["fallback_flow_idx"].tolist())
        finally:
            plane.latency_recorder = saved_recorder
            if manager is not None:
                manager.recent_matrix = saved_matrix

    def _bulk_gfib_accounting(self, state) -> bool:
        """Apply the batch's intra-group G-FIB query effects wholesale.

        Absent a cache clear, the aggregate query counters are order-free:
        every distinct *new* destination MAC costs exactly one cache miss no
        matter which arrival takes it, and every other query is a hit — so
        the batch total is a function of the query multiset, not its order.
        The new entries are inserted up front; fallback flows that later
        query the same MAC live simply hit them, which keeps the combined
        miss count identical to the scalar interleaving.

        Returns ``False`` — having changed nothing — when any touched cache
        could reach its clear threshold this batch (counting every fallback
        pair as a potential extra insertion); the caller then replays all
        queries in true arrival order instead.
        """
        intra_records = state["intra_records"]
        if not intra_records:
            return True
        counts = state["counts"]
        fallback_pairs = state["fallback_pair_count"]
        per_gfib: Dict[int, tuple] = {}
        for g, info in intra_records:
            entry = per_gfib.get(id(info.gfib))
            if entry is None:
                entry = (info.gfib, {})
                per_gfib[id(info.gfib)] = entry
            queries = entry[1]
            previous = queries.get(info.dst_mac)
            if previous is None:
                queries[info.dst_mac] = [counts[g], info.candidates]
            else:
                previous[0] += counts[g]
        plans = []
        for gfib, queries in per_gfib.values():
            cache = gfib._query_cache
            total = 0
            new_entries = []
            for mac, (pair_flows, candidates) in queries.items():
                total += pair_flows
                if mac not in cache:
                    new_entries.append((mac, candidates))
            if len(cache) + len(new_entries) + fallback_pairs >= gfib.QUERY_CACHE_LIMIT:
                return False
            plans.append((gfib, total, new_entries))
        for gfib, total, new_entries in plans:
            cache = gfib._query_cache
            for mac, candidates in new_entries:
                cache[mac] = candidates
            gfib.query_count += total
            gfib.query_cache_hits += total - len(new_entries)
        return True

    def _walk_plain(self, batch, state, indices: List[int]) -> None:
        """Replay fallback flows — and intra-group G-FIB queries — in order.

        On the ordered path (cache-clear hazard) intra-group flows stay on
        the array path for everything except their per-arrival
        ``GroupFib.query``, which is replayed against the real G-FIB so the
        query cache (and its hit counters) evolves in exactly the scalar
        arrival order, interleaved with the fallback flows' own live queries.
        """
        if not indices:
            return
        handle = self._plane.handle_flow_arrival
        cls_flow = state["cls_flow"].tolist()
        inverse = state["inverse"].tolist()
        infos = state["infos"]
        first_flow = state["first_flow"]
        steady_flow = state["steady_flow"]
        handled = state["handled"]
        for i in indices:
            if cls_flow[i] == _INTRA:
                info = infos[inverse[i]]
                info.gfib.query(info.dst_mac)
                continue
            flow = batch[i]
            result = handle(flow, flow.start_time)
            if result is None:
                handled[i] = False
            else:
                first_flow[i] = result.first_packet_latency_ms
                steady_flow[i] = result.steady_packet_latency_ms

    def _walk_with_meter(self, batch, state, meter) -> None:
        """Replay the whole batch in arrival order when links are metered.

        The meter's window accounting and congestion-crossing detection are
        order-dependent, so vectorized flows observe the meter (and collect
        their queueing penalty) interleaved with the scalar fallbacks
        exactly as the scalar replayer would.
        """
        plane = self._plane
        model = plane.latency_model
        counters = plane.counters
        tracer = plane.tracer
        handle = plane.handle_flow_arrival
        cls_flow = state["cls_flow"].tolist()
        inverse = state["inverse"].tolist()
        infos = state["infos"]
        first_flow = state["first_flow"]
        steady_flow = state["steady_flow"]
        handled = state["handled"]
        for i, flow in enumerate(batch):
            flow_class = cls_flow[i]
            if flow_class == _DEPARTED:
                continue
            if flow_class == _FALLBACK:
                result = handle(flow, flow.start_time)
                if result is None:
                    handled[i] = False
                else:
                    first_flow[i] = result.first_packet_latency_ms
                    steady_flow[i] = result.steady_packet_latency_ms
                continue
            info = infos[inverse[i]]
            if flow_class == _INTRA:
                # Scalar order: the G-FIB query happens inside process_packet,
                # before the congestion penalty is computed.
                info.gfib.query(info.dst_mac)
            if info.src_switch_id == info.dst_switch_id:
                continue
            now = flow.start_time
            observation = meter.observe(flow, info.src_switch_id, info.dst_switch_id, now)
            if observation.congested:
                counters.congested_flows += 1
            if tracer.enabled:
                for switch_id, utilization in observation.newly_congested:
                    tracer.emit(
                        LinkCongestedEvent(time=now, switch_id=switch_id, utilization=utilization)
                    )
            penalty = model.queueing_delay_ms(observation.src_utilization) + model.queueing_delay_ms(
                observation.dst_utilization
            )
            if penalty > 0.0:
                first_flow[i] = float(first_flow[i]) + penalty
                steady_flow[i] = float(steady_flow[i]) + penalty

    # -- stage 3: exact write-back ---------------------------------------------

    def _accumulate(self, state) -> None:
        plane = self._plane
        counters = plane.counters
        switches = self._switches
        infos = state["infos"]
        cls = state["cls"]
        counts = state["counts"]
        last_t = state["last_t"]

        departed_flows = 0
        local_flows = 0
        hit_flows = 0
        intra_flows = 0
        duplicate_deliveries = 0
        false_positive_flows = 0
        misses_by_switch: Dict[int, int] = {}
        ingress_by_switch: Dict[int, int] = {}

        for g in state["local_pairs"]:
            if cls[g] != _LOCAL:
                continue
            info = infos[g]
            pair_flows = counts[g]
            local_flows += pair_flows
            misses_by_switch[info.src_switch_id] = (
                misses_by_switch.get(info.src_switch_id, 0) + pair_flows
            )
            ingress_by_switch[info.src_switch_id] = (
                ingress_by_switch.get(info.src_switch_id, 0) + pair_flows
            )

        for g, rule, table in state["hit_records"]:
            if cls[g] != _HIT:
                continue  # demoted by the slack guard; replayed scalar
            info = infos[g]
            pair_flows = counts[g]
            hit_flows += pair_flows
            rule.last_matched_at = last_t[g]
            rule.packet_count += pair_flows
            rule.byte_count += pair_flows * 1500
            table.stats.hits += pair_flows
            ingress_by_switch[info.src_switch_id] = (
                ingress_by_switch.get(info.src_switch_id, 0) + pair_flows
            )

        for g, info in state["intra_records"]:
            pair_flows = counts[g]
            intra_flows += pair_flows
            duplicates = len(info.candidates) - 1
            duplicate_deliveries += duplicates * pair_flows
            if info.fp_targets:
                false_positive_flows += pair_flows
            info.switch.duplicate_deliveries += duplicates * pair_flows
            misses_by_switch[info.src_switch_id] = (
                misses_by_switch.get(info.src_switch_id, 0) + pair_flows
            )
            ingress_by_switch[info.src_switch_id] = (
                ingress_by_switch.get(info.src_switch_id, 0) + pair_flows
            )
            for target in info.candidates:
                switches[target].packets_processed += pair_flows
            for target in info.fp_targets:
                switches[target].false_positive_drops += pair_flows

        for g, flow_class in enumerate(cls):
            if flow_class == _DEPARTED:
                departed_flows += counts[g]

        counters.departed_flows += departed_flows
        counters.flows_handled += local_flows + hit_flows + intra_flows
        counters.local_flows += local_flows
        counters.duplicate_deliveries += duplicate_deliveries
        if self._lazyctrl:
            counters.intra_group_flows += intra_flows
            counters.false_positive_drops += false_positive_flows

        for switch_id, amount in ingress_by_switch.items():
            switches[switch_id].packets_processed += amount
        for switch_id, amount in misses_by_switch.items():
            switches[switch_id].flow_table.stats.misses += amount

        # Intensity: replay every non-departed pair in first-arrival order so
        # the recent matrix's key order (which later float folds iterate)
        # matches the scalar path; the values themselves are order-free.
        if self._lazyctrl:
            matrix = plane.controller.grouping_manager.recent_matrix
            for g in np.argsort(state["first_index"], kind="stable").tolist():
                if cls[g] == _DEPARTED:
                    continue
                info = infos[g]
                matrix.record_many(info.src_switch_id, info.dst_switch_id, counts[g])

        self._fold_latency(state)
        self._fold_timeline(state)

    def _fold_latency(self, state) -> None:
        recorder = self._plane.latency_recorder
        handled = state["handled"]
        if not handled.any():
            return
        times = state["times"][handled]
        first = state["first_flow"][handled]
        steady = state["steady_flow"][handled]
        pcs = state["pcs"][handled]
        buckets = np.floor_divide(times, recorder.bucket_seconds).astype(np.int64)
        # Interleave each flow's two record() contributions in arrival order:
        # first (count 1), then steady * (packet_count - 1) — a 0.0 identity
        # term when the flow is single-packet, exactly as the scalar early
        # return leaves the sum untouched.
        values = np.empty(2 * len(times), dtype=np.float64)
        values[0::2] = first
        values[1::2] = steady * (pcs - 1)
        starts = np.flatnonzero(np.concatenate(([True], buckets[1:] != buckets[:-1])))
        ends = np.concatenate((starts[1:], [len(buckets)]))
        bucket_list = buckets[starts].tolist()
        for segment, start in enumerate(starts.tolist()):
            end = int(ends[segment])
            recorder.record_bulk(
                bucket_list[segment],
                values[2 * start : 2 * end].tolist(),
                int(pcs[start:end].sum()),
            )

    def _fold_timeline(self, state) -> None:
        tracer = self._plane.tracer
        if not tracer.enabled or tracer.timeline is None:
            return
        vec_idx = state["vectorized_flow_idx"]
        if vec_idx.size == 0:
            return
        timeline = tracer.timeline
        times = state["times"][vec_idx]
        first = state["first_flow"][vec_idx]
        buckets = np.maximum(
            np.floor_divide(times, timeline.bucket_seconds).astype(np.int64), 0
        )
        unique_buckets, bucket_counts = np.unique(buckets, return_counts=True)
        flow_counts = dict(zip(unique_buckets.tolist(), bucket_counts.tolist()))
        unique_values, value_inverse = np.unique(first, return_inverse=True)
        value_bins = np.array(
            [_latency_bin(value) for value in unique_values.tolist()], dtype=np.int64
        )
        bins = value_bins[value_inverse]
        # Count per (bucket, latency-bin) pair; bins span [-30, 50] so +64
        # packs them into a clean non-negative code.
        pair_codes = buckets * 128 + (bins + 64)
        unique_pairs, pair_counts = np.unique(pair_codes, return_counts=True)
        bin_counts = {
            (code // 128, code % 128 - 64): amount
            for code, amount in zip(unique_pairs.tolist(), pair_counts.tolist())
        }
        timeline.record_flows_bulk(flow_counts, bin_counts)


def build_kernel(plane, *, perf=NULL_RECORDER) -> Optional[ColumnarReplayKernel]:
    """Build a kernel for ``plane``, or ``None`` when it cannot be accelerated."""
    from repro.core.system import LazyCtrlSystem, OpenFlowSystem

    if not isinstance(plane, (LazyCtrlSystem, OpenFlowSystem)):
        return None  # custom planes registered by tests keep the scalar path
    if plane.latency_recorder._all is not None:
        return None  # pragma: no cover - replays never keep raw samples
    if isinstance(plane, LazyCtrlSystem):
        switches = {switch.switch_id: switch for switch in plane.controller.switches()}
        return ColumnarReplayKernel(plane, switches, lazyctrl=True, perf=perf)
    return ColumnarReplayKernel(plane, dict(plane._switches), lazyctrl=False, perf=perf)
