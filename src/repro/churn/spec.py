"""Declarative workload-dynamics (churn) specification.

The paper's headline claim is that LazyCtrl's *dynamic* grouping adapts as
traffic drifts (§IV-B regrouping triggers, Fig. 8 update frequency).  A
:class:`ChurnSpec` describes the topology dynamics that drive that drift
during a replay: VM migrations, coherent locality shifts of whole tenants,
and tenant arrivals/departures.  Like every other spec in the library it is
a frozen, validated, JSON-round-trippable dataclass, so scenarios carrying
churn remain fully declarative.

All processes draw deterministic Poisson event streams from RNGs derived
from ``seed`` (one independent stream per process), so two control planes
run against the same spec experience *identical* churn — the comparison in
Fig. 7 stays apples-to-apples under dynamics.

A spec with every rate at zero is inert: the runner skips the churn
machinery entirely and the replay is bit-for-bit identical to one without a
churn block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class ChurnSpec:
    """Rates, seeds and time window of the workload-dynamics processes.

    Rates are events per simulated hour.  ``migration_rate_per_hour`` moves
    single VMs to random switches; ``drift_rate_per_hour`` moves a coherent
    batch of one tenant's VMs toward a new home switch (traffic-locality
    drift); the tenant rates create and dissolve whole tenants.  Events are
    generated over ``[start_hour, end_hour)`` of the replay (``end_hour``
    ``None`` means until the replay window closes).
    """

    seed: int = 2015
    migration_rate_per_hour: float = 0.0
    drift_rate_per_hour: float = 0.0
    drift_batch_size: int = 4
    tenant_arrival_rate_per_hour: float = 0.0
    tenant_departure_rate_per_hour: float = 0.0
    tenant_size_range: Tuple[int, int] = (20, 40)
    start_hour: float = 0.0
    end_hour: Optional[float] = None

    def __post_init__(self) -> None:
        for name in (
            "migration_rate_per_hour",
            "drift_rate_per_hour",
            "tenant_arrival_rate_per_hour",
            "tenant_departure_rate_per_hour",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.drift_batch_size < 1:
            raise ConfigurationError("drift_batch_size must be at least 1")
        low, high = self.tenant_size_range
        if not 1 <= low <= high:
            raise ConfigurationError("tenant_size_range must satisfy 1 <= low <= high")
        object.__setattr__(self, "tenant_size_range", (int(low), int(high)))
        if self.start_hour < 0:
            raise ConfigurationError("start_hour must be non-negative")
        if self.end_hour is not None and self.end_hour <= self.start_hour:
            raise ConfigurationError("end_hour must be greater than start_hour")

    @property
    def active(self) -> bool:
        """Whether any churn process has a positive rate."""
        return (
            self.migration_rate_per_hour > 0
            or self.drift_rate_per_hour > 0
            or self.tenant_arrival_rate_per_hour > 0
            or self.tenant_departure_rate_per_hour > 0
        )

    def window_seconds(self, replay_end: float) -> Tuple[float, float]:
        """The ``[start, end)`` churn window in seconds, clamped to the replay."""
        start = self.start_hour * 3600.0
        end = replay_end if self.end_hour is None else min(self.end_hour * 3600.0, replay_end)
        return start, max(start, end)
