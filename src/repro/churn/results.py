"""The serializable churn summary attached to a run result.

Lives in the churn package (below the core layer) so both the churn
scheduler and :mod:`repro.core.results` can use it without an import cycle;
:class:`~repro.core.results.RunResult` re-exports it as part of the result
family.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True, slots=True)
class ChurnRunResult:
    """Workload-dynamics (churn) applied to one run, bucketed like the workload.

    ``per_bucket_events`` counts applied churn events per result bucket;
    ``churn_attributed_regroupings`` counts grouping updates that fired with
    topology churn pending since the previous update (zero for control
    planes without dynamic grouping).
    """

    migrations: int = 0
    drift_events: int = 0
    drift_host_moves: int = 0
    tenant_arrivals: int = 0
    tenant_departures: int = 0
    hosts_added: int = 0
    hosts_removed: int = 0
    skipped_events: int = 0
    churn_attributed_regroupings: int = 0
    per_bucket_events: List[float] = field(default_factory=list)

    def total_events(self) -> int:
        """Number of churn events that changed the topology."""
        return self.migrations + self.drift_events + self.tenant_arrivals + self.tenant_departures
