"""Churn processes: deterministic generators of workload-dynamics events.

Each process owns an independent RNG stream derived from the churn seed and
its own name, draws its event *times* up front (a Poisson arrival process
over the churn window) and picks event *targets* when the event fires, from
the network state of that moment.  Because a process only ever consumes its
own stream, and fires in deterministic event-queue order, two replays of the
same spec — or the same spec against two different control planes — apply
exactly the same churn.

Processes do not touch control-plane state directly: they call the
:class:`ChurnTarget` hooks a system under test exposes
(``churn_migrate_host`` and friends), which route the change through
:class:`~repro.topology.network.DataCenterNetwork`, the
:class:`~repro.controlplane.tenant_manager.TenantManager` and
:class:`~repro.controlplane.state_dissemination.StateDisseminator`, so
L-FIB/G-FIB/C-LIB state and the intensity matrices all see it.
"""

from __future__ import annotations

import random
from typing import List, Protocol, Sequence, Tuple

from repro.churn.spec import ChurnSpec
from repro.common.rng import make_rng
from repro.simulation.events import EventKind
from repro.topology.network import DataCenterNetwork


class ChurnTarget(Protocol):
    """The hooks a system under test exposes to experience churn."""

    network: DataCenterNetwork

    def churn_migrate_host(self, host_id: int, new_switch_id: int, *, now: float) -> None:
        """Migrate one VM to another edge switch, updating control-plane state."""
        ...

    def churn_tenant_arrival(self, name: str, placements: Sequence[int], *, now: float) -> int:
        """Create a tenant with one VM per placement switch; returns its id."""
        ...

    def churn_tenant_departure(self, tenant_id: int, *, now: float) -> int:
        """Dissolve a tenant and all its VMs; returns the number removed."""
        ...


def poisson_event_times(rng: random.Random, rate_per_hour: float, start: float, end: float) -> List[float]:
    """Event times of a Poisson process with ``rate_per_hour`` over ``[start, end)``."""
    times: List[float] = []
    if rate_per_hour <= 0 or end <= start:
        return times
    rate_per_second = rate_per_hour / 3600.0
    t = start + rng.expovariate(rate_per_second)
    while t < end:
        times.append(t)
        t += rng.expovariate(rate_per_second)
    return times


class ChurnProcess:
    """Base class: a named process with its own deterministic RNG stream."""

    name: str = "churn"

    def __init__(self, spec: ChurnSpec) -> None:
        self.spec = spec
        self.rng = make_rng(spec.seed, "churn", self.name)

    def schedule(self, start: float, end: float) -> List[Tuple[float, EventKind]]:
        """Pre-draw the ``(time, kind)`` stream this process will fire."""
        raise NotImplementedError

    def fire(self, kind: EventKind, target: ChurnTarget, now: float) -> int:
        """Apply one event; returns the number of VM-level changes (0 = skipped)."""
        raise NotImplementedError


class MigrationProcess(ChurnProcess):
    """Independent single-VM migrations to uniformly random other switches."""

    name = "migration"

    def schedule(self, start: float, end: float) -> List[Tuple[float, EventKind]]:
        times = poisson_event_times(self.rng, self.spec.migration_rate_per_hour, start, end)
        return [(t, EventKind.HOST_MIGRATION) for t in times]

    def fire(self, kind: EventKind, target: ChurnTarget, now: float) -> int:
        network = target.network
        hosts = network.hosts()
        if not hosts or network.switch_count() < 2:
            return 0
        host = self.rng.choice(hosts)
        candidates = [s for s in network.switch_ids() if s != host.switch_id]
        target.churn_migrate_host(host.host_id, self.rng.choice(candidates), now=now)
        return 1


class DriftProcess(ChurnProcess):
    """Traffic-locality drift: a batch of one tenant's VMs moves together.

    Moving several VMs of the same tenant toward a common switch shifts that
    tenant's traffic footprint coherently — the kind of gradual drift that
    makes an initially good grouping stale (paper §IV-B), as opposed to the
    uncorrelated noise of :class:`MigrationProcess`.
    """

    name = "drift"

    def schedule(self, start: float, end: float) -> List[Tuple[float, EventKind]]:
        times = poisson_event_times(self.rng, self.spec.drift_rate_per_hour, start, end)
        return [(t, EventKind.TRAFFIC_DRIFT) for t in times]

    def fire(self, kind: EventKind, target: ChurnTarget, now: float) -> int:
        network = target.network
        tenants = network.tenants.tenants()
        if not tenants or network.switch_count() < 2:
            return 0
        tenant = self.rng.choice(tenants)
        destination = self.rng.choice(network.switch_ids())
        movable = [
            host_id
            for host_id in tenant.host_ids
            if network.host(host_id).switch_id != destination
        ]
        if not movable:
            return 0
        batch_size = min(self.spec.drift_batch_size, len(movable))
        for host_id in sorted(self.rng.sample(movable, batch_size)):
            target.churn_migrate_host(host_id, destination, now=now)
        return batch_size


class TenantLifecycleProcess(ChurnProcess):
    """Tenant arrivals and departures (whole-tenant lifecycle churn)."""

    name = "tenant-lifecycle"

    def __init__(self, spec: ChurnSpec) -> None:
        super().__init__(spec)
        self._arrival_counter = 0

    def schedule(self, start: float, end: float) -> List[Tuple[float, EventKind]]:
        arrivals = poisson_event_times(self.rng, self.spec.tenant_arrival_rate_per_hour, start, end)
        departures = poisson_event_times(self.rng, self.spec.tenant_departure_rate_per_hour, start, end)
        events = [(t, EventKind.TENANT_ARRIVAL) for t in arrivals]
        events.extend((t, EventKind.TENANT_DEPARTURE) for t in departures)
        events.sort(key=lambda item: item[0])
        return events

    def fire(self, kind: EventKind, target: ChurnTarget, now: float) -> int:
        if kind == EventKind.TENANT_ARRIVAL:
            return self._arrive(target, now)
        return self._depart(target, now)

    def _arrive(self, target: ChurnTarget, now: float) -> int:
        network = target.network
        switch_ids = network.switch_ids()
        if not switch_ids:
            return 0
        low, high = self.spec.tenant_size_range
        size = self.rng.randint(low, high)
        # New tenants show the same locality as the seeded ones: a couple of
        # home switches absorb almost all of the VMs.
        home_count = min(2, len(switch_ids))
        homes = self.rng.sample(switch_ids, home_count)
        placements = [self.rng.choice(homes) for _ in range(size)]
        name = f"churn-tenant-{self._arrival_counter:04d}"
        self._arrival_counter += 1
        target.churn_tenant_arrival(name, placements, now=now)
        return size

    def _depart(self, target: ChurnTarget, now: float) -> int:
        network = target.network
        tenants = network.tenants.tenants()
        if len(tenants) < 2:
            # Never dissolve the last tenant; the topology must stay usable.
            return 0
        tenant = self.rng.choice(tenants)
        return target.churn_tenant_departure(tenant.tenant_id, now=now)


def build_processes(spec: ChurnSpec) -> List[ChurnProcess]:
    """The processes a spec enables, in a fixed deterministic order."""
    processes: List[ChurnProcess] = []
    if spec.migration_rate_per_hour > 0:
        processes.append(MigrationProcess(spec))
    if spec.drift_rate_per_hour > 0:
        processes.append(DriftProcess(spec))
    if spec.tenant_arrival_rate_per_hour > 0 or spec.tenant_departure_rate_per_hour > 0:
        processes.append(TenantLifecycleProcess(spec))
    return processes
