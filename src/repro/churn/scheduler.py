"""Schedules churn events onto the simulation engine and accounts for them.

:class:`ChurnScheduler` is the glue between a :class:`~repro.churn.spec.ChurnSpec`
and one replay: it builds the enabled processes, pre-draws their event
streams, loads every event onto a :class:`~repro.simulation.engine.SimulationEngine`
queue, and fires them through the system under test's churn hooks as the
:class:`~repro.traffic.replay.TraceReplayer` advances the engine clock.
Applied events are counted per result bucket so :class:`ScenarioResult`
surfaces how much dynamics each bucket experienced (the churn analogue of the
Fig. 8 update-frequency series).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.churn.processes import ChurnProcess, ChurnTarget, build_processes
from repro.churn.results import ChurnRunResult
from repro.churn.spec import ChurnSpec
from repro.obs.events import ChurnAppliedEvent
from repro.obs.tracer import NULL_TRACER
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import Event, EventKind
from repro.simulation.metrics import CounterSeries


@dataclass(slots=True)
class ChurnStats:
    """Aggregate counters of churn applied during one replay."""

    migrations: int = 0
    drift_events: int = 0
    drift_host_moves: int = 0
    tenant_arrivals: int = 0
    tenant_departures: int = 0
    hosts_added: int = 0
    hosts_removed: int = 0
    skipped_events: int = 0

    def applied_events(self) -> int:
        """Number of churn events that changed the topology."""
        return self.migrations + self.drift_events + self.tenant_arrivals + self.tenant_departures


class ChurnScheduler:
    """Loads a spec's churn events onto an engine and fires them into a target."""

    def __init__(
        self,
        spec: ChurnSpec,
        target: ChurnTarget,
        *,
        engine: SimulationEngine,
        replay_end: float,
        bucket_seconds: float,
        tracer=NULL_TRACER,
    ) -> None:
        self.spec = spec
        self.target = target
        self.tracer = tracer
        self.stats = ChurnStats()
        self.events_series = CounterSeries(bucket_seconds)
        self.scheduled_events = 0
        start, end = spec.window_seconds(replay_end)
        for process in build_processes(spec):
            for time, kind in process.schedule(start, end):
                engine.schedule_at(time, kind, callback=self._make_callback(process, kind))
                self.scheduled_events += 1

    def _make_callback(self, process: ChurnProcess, kind: EventKind):
        def fire(event: Event) -> None:
            applied = process.fire(kind, self.target, event.time)
            self._account(kind, applied, event.time)

        return fire

    def _account(self, kind: EventKind, applied: int, now: float) -> None:
        if self.tracer.enabled:
            self.tracer.emit(ChurnAppliedEvent(time=now, kind=kind.value, applied=applied))
        if applied <= 0:
            self.stats.skipped_events += 1
            return
        if kind == EventKind.HOST_MIGRATION:
            self.stats.migrations += 1
        elif kind == EventKind.TRAFFIC_DRIFT:
            self.stats.drift_events += 1
            self.stats.drift_host_moves += applied
        elif kind == EventKind.TENANT_ARRIVAL:
            self.stats.tenant_arrivals += 1
            self.stats.hosts_added += applied
        elif kind == EventKind.TENANT_DEPARTURE:
            self.stats.tenant_departures += 1
            self.stats.hosts_removed += applied
        self.events_series.record(now)

    def result(self, *, bucket_count: int, churn_attributed_regroupings: int = 0) -> ChurnRunResult:
        """The serializable churn summary for one run."""
        per_bucket = [
            count for _, count in self.events_series.series(bucket_range=(0, bucket_count))
        ]
        return ChurnRunResult(
            migrations=self.stats.migrations,
            drift_events=self.stats.drift_events,
            drift_host_moves=self.stats.drift_host_moves,
            tenant_arrivals=self.stats.tenant_arrivals,
            tenant_departures=self.stats.tenant_departures,
            hosts_added=self.stats.hosts_added,
            hosts_removed=self.stats.hosts_removed,
            skipped_events=self.stats.skipped_events,
            churn_attributed_regroupings=churn_attributed_regroupings,
            per_bucket_events=per_bucket,
        )
