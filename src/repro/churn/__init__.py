"""Workload-dynamics (churn) subsystem.

Schedules VM migrations, traffic-locality drift and tenant lifecycle events
onto the simulation engine during a replay, so LazyCtrl's dynamic regrouping
is exercised by *topology* dynamics rather than only by traffic noise.
"""

from repro.churn.processes import (
    ChurnProcess,
    ChurnTarget,
    DriftProcess,
    MigrationProcess,
    TenantLifecycleProcess,
    build_processes,
    poisson_event_times,
)
from repro.churn.results import ChurnRunResult
from repro.churn.scheduler import ChurnScheduler, ChurnStats
from repro.churn.spec import ChurnSpec

__all__ = [
    "ChurnProcess",
    "ChurnRunResult",
    "ChurnScheduler",
    "ChurnSpec",
    "ChurnStats",
    "ChurnTarget",
    "DriftProcess",
    "MigrationProcess",
    "TenantLifecycleProcess",
    "build_processes",
    "poisson_event_times",
]
