"""Data plane: forwarding decisions, the LazyCtrl edge switch and the OpenFlow baseline."""

from repro.dataplane.decisions import ForwardingDecision, ForwardingOutcome
from repro.dataplane.edge_switch import LazyCtrlEdgeSwitch
from repro.dataplane.openflow_switch import OpenFlowEdgeSwitch

__all__ = [
    "ForwardingDecision",
    "ForwardingOutcome",
    "LazyCtrlEdgeSwitch",
    "OpenFlowEdgeSwitch",
]
