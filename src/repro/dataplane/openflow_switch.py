"""Baseline OpenFlow edge switch.

The comparison point of the paper's evaluation is "standard OpenFlow control
(with the original Floodlight implementation)": a plain reactive design in
which every edge switch consults only its flow table and punts every miss to
the central controller as a ``Packet_In``.  This switch therefore has an
L-FIB for locally attached hosts (an ordinary learning MAC table) but no
G-FIB and no group membership.
"""

from __future__ import annotations

from typing import Optional

from repro.common.addresses import IpAddress, MacAddress
from repro.common.config import FlowTableConfig
from repro.common.packets import FlowKey, Packet, PacketKind
from repro.datastructures.fib import LocalFib
from repro.datastructures.flow_table import ActionType, FlowAction, FlowRule, FlowTable
from repro.dataplane.decisions import ForwardingDecision, ForwardingOutcome
from repro.dataplane.edge_switch import FlowRemovedHandler
from repro.tables.policies import RemovalReason


class OpenFlowEdgeSwitch:
    """A reactive OpenFlow switch: flow table + local MAC learning only."""

    def __init__(
        self,
        switch_id: int,
        *,
        underlay_ip: IpAddress,
        management_mac: MacAddress,
        flow_table_config: FlowTableConfig | None = None,
    ) -> None:
        self.switch_id = switch_id
        self.underlay_ip = underlay_ip
        self.management_mac = management_mac
        self.lfib = LocalFib()
        self.flow_table = FlowTable(flow_table_config)
        self.flow_table.removed_listener = self._on_rule_removed
        self.flow_removed_handler: Optional[FlowRemovedHandler] = None
        self.failed = False
        self.packets_processed = 0
        self.packets_to_controller = 0

    def attach_host(self, mac: MacAddress, port: int, tenant_id: int) -> bool:
        """Learn a locally attached VM."""
        return self.lfib.learn(mac, port, tenant_id)

    def detach_host(self, mac: MacAddress) -> bool:
        """Forget a locally attached VM."""
        return self.lfib.forget(mac)

    def process_packet(self, packet: Packet, now: float = 0.0) -> ForwardingDecision:
        """Flow-table lookup, then local delivery, otherwise Packet_In."""
        self.packets_processed += 1
        if self.failed:
            return ForwardingDecision(
                outcome=ForwardingOutcome.DROPPED_NO_RULE,
                switch_id=self.switch_id,
                packet=packet,
                note="switch is failed",
            )
        key = FlowKey(src_mac=packet.src_mac, dst_mac=packet.dst_mac, tenant_id=packet.tenant_id)
        rule = self.flow_table.lookup(key, now=now, size_bytes=packet.size_bytes)
        if rule is not None and rule.action.kind != ActionType.SEND_TO_CONTROLLER:
            if rule.action.kind == ActionType.FORWARD_LOCAL:
                return ForwardingDecision(
                    outcome=ForwardingOutcome.FLOW_TABLE_HIT,
                    switch_id=self.switch_id,
                    packet=packet,
                    local_port=rule.action.target,
                )
            if rule.action.kind == ActionType.DROP:
                return ForwardingDecision(
                    outcome=ForwardingOutcome.DROPPED_NO_RULE,
                    switch_id=self.switch_id,
                    packet=packet,
                    note="drop rule",
                )
            return ForwardingDecision(
                outcome=ForwardingOutcome.FLOW_TABLE_HIT,
                switch_id=self.switch_id,
                packet=packet,
                target_switches=(rule.action.target,) if rule.action.target is not None else (),
            )

        # ARP requests for local hosts can be answered without the controller;
        # everything else is a table miss and becomes a Packet_In.
        if packet.kind == PacketKind.ARP_REQUEST and self.lfib.lookup(packet.dst_mac) is not None:
            return ForwardingDecision(
                outcome=ForwardingOutcome.ARP_RESOLVED_LOCALLY,
                switch_id=self.switch_id,
                packet=packet,
            )
        local_entry = self.lfib.lookup(packet.dst_mac)
        if local_entry is not None and not packet.is_encapsulated:
            return ForwardingDecision(
                outcome=ForwardingOutcome.LOCAL_DELIVERY,
                switch_id=self.switch_id,
                packet=packet,
                local_port=local_entry.port,
            )
        self.packets_to_controller += 1
        outcome = (
            ForwardingOutcome.ARP_FORWARDED_TO_CONTROLLER
            if packet.kind == PacketKind.ARP_REQUEST
            else ForwardingOutcome.SENT_TO_CONTROLLER
        )
        return ForwardingDecision(outcome=outcome, switch_id=self.switch_id, packet=packet)

    def install_flow_rule(self, key: FlowKey, action: FlowAction, *, priority: int = 0, now: float = 0.0) -> None:
        """Install a controller-provided rule."""
        self.flow_table.install(key, action, priority=priority, now=now)

    def advance_tables(self, now: float) -> int:
        """Eagerly expire aged flow rules at replay time ``now``."""
        return len(self.flow_table.expire(now))

    def _on_rule_removed(self, rule: FlowRule, now: float, reason: RemovalReason) -> None:
        """Relay a table-initiated removal as ``flow_removed`` to the controller."""
        if self.flow_removed_handler is not None:
            self.flow_removed_handler(self.switch_id, rule, now, reason)

    def local_host(self, mac: MacAddress) -> Optional[int]:
        """Port of a locally attached host, or ``None``."""
        entry = self.lfib.lookup(mac)
        return entry.port if entry else None

    def reset_counters(self) -> None:
        """Zero the per-switch counters."""
        self.packets_processed = 0
        self.packets_to_controller = 0
