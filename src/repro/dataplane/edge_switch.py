"""LazyCtrl edge switch.

Implements the packet-forwarding routine of paper Fig. 5 on top of the three
tables of Fig. 4:

* a flow table holding controller-installed rules (inter-group and other
  fine-grained flows),
* the L-FIB tracking locally attached virtual machines,
* the Bloom-filter-based G-FIB summarizing the L-FIBs of the other switches
  in the same Local Control Group.

The switch is a pure control-logic model: "forwarding" a packet means
returning a :class:`~repro.dataplane.decisions.ForwardingDecision` that the
simulation layer turns into latency and workload accounting.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.common.addresses import IpAddress, MacAddress
from repro.common.config import BloomFilterConfig, FlowTableConfig
from repro.common.errors import ControlPlaneError
from repro.common.packets import EncapHeader, FlowKey, Packet, PacketKind
from repro.datastructures.fib import FibEntry, GroupFib, LocalFib
from repro.datastructures.flow_table import ActionType, FlowAction, FlowRule, FlowTable
from repro.dataplane.decisions import ForwardingDecision, ForwardingOutcome
from repro.tables.policies import RemovalReason

#: Callback a controller registers to receive ``flow_removed`` notifications:
#: ``(switch_id, rule, now, reason)``.
FlowRemovedHandler = Callable[[int, FlowRule, float, RemovalReason], None]


class LazyCtrlEdgeSwitch:
    """An Open vSwitch-like edge switch extended with L-FIB/G-FIB processing."""

    def __init__(
        self,
        switch_id: int,
        *,
        underlay_ip: IpAddress,
        management_mac: MacAddress,
        bloom_config: BloomFilterConfig | None = None,
        flow_table_config: FlowTableConfig | None = None,
    ) -> None:
        self.switch_id = switch_id
        self.underlay_ip = underlay_ip
        self.management_mac = management_mac
        self.lfib = LocalFib()
        self.gfib = GroupFib(bloom_config)
        self.flow_table = FlowTable(flow_table_config)
        self.flow_table.removed_listener = self._on_rule_removed
        self.flow_removed_handler: Optional[FlowRemovedHandler] = None
        self.group_id: Optional[int] = None
        self.is_designated = False
        self.failed = False
        # Counters used by the evaluation and by tests.
        self.packets_processed = 0
        self.packets_to_controller = 0
        self.duplicate_deliveries = 0
        self.false_positive_drops = 0

    # -- host management ----------------------------------------------------

    def attach_host(self, mac: MacAddress, port: int, tenant_id: int) -> bool:
        """Learn a locally attached VM; returns ``True`` when the L-FIB changed."""
        return self.lfib.learn(mac, port, tenant_id)

    def detach_host(self, mac: MacAddress) -> bool:
        """Forget a locally attached VM (migration away or removal)."""
        return self.lfib.forget(mac)

    def local_hosts(self) -> list[MacAddress]:
        """MAC addresses of all locally attached VMs."""
        return self.lfib.macs()

    # -- group membership ----------------------------------------------------

    def join_group(self, group_id: int, *, designated: bool = False) -> None:
        """Join a Local Control Group (clears the G-FIB; peers are installed next)."""
        self.group_id = group_id
        self.is_designated = designated
        self.gfib.clear()

    def leave_group(self) -> None:
        """Leave the current group and drop all group state."""
        self.group_id = None
        self.is_designated = False
        self.gfib.clear()

    def install_peer_lfib(self, peer_switch_id: int, macs: Iterable[MacAddress]) -> None:
        """Install/update the Bloom filter summarizing a peer's L-FIB."""
        if peer_switch_id == self.switch_id:
            raise ControlPlaneError("a switch does not keep a G-FIB entry for itself")
        self.gfib.install_peer(peer_switch_id, macs)

    def remove_peer(self, peer_switch_id: int) -> None:
        """Drop the G-FIB entry of a peer that left the group or failed."""
        self.gfib.remove_peer(peer_switch_id)

    # -- packet processing (Fig. 5) -----------------------------------------

    def process_packet(self, packet: Packet, now: float = 0.0) -> ForwardingDecision:
        """Run the forwarding routine of Fig. 5 for one packet."""
        self.packets_processed += 1
        if self.failed:
            return ForwardingDecision(
                outcome=ForwardingOutcome.DROPPED_NO_RULE,
                switch_id=self.switch_id,
                packet=packet,
                note="switch is failed",
            )
        if packet.is_encapsulated:
            return self._process_encapsulated(packet)
        if packet.kind == PacketKind.ARP_REQUEST:
            return self._process_arp_request(packet)
        return self._process_plain(packet, now)

    def _process_plain(self, packet: Packet, now: float) -> ForwardingDecision:
        """Lines 1-21 of Fig. 5: a packet originating from a local host."""
        # The source is a local host: opportunistically learn/refresh it.
        key = FlowKey(src_mac=packet.src_mac, dst_mac=packet.dst_mac, tenant_id=packet.tenant_id)

        # 1. Flow table first (controller-installed inter-group rules).
        rule = self.flow_table.lookup(key, now=now, size_bytes=packet.size_bytes)
        if rule is not None:
            if rule.action.kind == ActionType.FORWARD_LOCAL:
                return ForwardingDecision(
                    outcome=ForwardingOutcome.FLOW_TABLE_HIT,
                    switch_id=self.switch_id,
                    packet=packet,
                    local_port=rule.action.target,
                )
            if rule.action.kind == ActionType.ENCAP_TO_SWITCH:
                return ForwardingDecision(
                    outcome=ForwardingOutcome.FLOW_TABLE_HIT,
                    switch_id=self.switch_id,
                    packet=packet,
                    target_switches=(rule.action.target,) if rule.action.target is not None else (),
                )
            if rule.action.kind == ActionType.DROP:
                return ForwardingDecision(
                    outcome=ForwardingOutcome.DROPPED_NO_RULE,
                    switch_id=self.switch_id,
                    packet=packet,
                    note="drop rule",
                )
            # SEND_TO_CONTROLLER rules fall through to the controller path.
            self.packets_to_controller += 1
            return ForwardingDecision(
                outcome=ForwardingOutcome.SENT_TO_CONTROLLER,
                switch_id=self.switch_id,
                packet=packet,
                note="explicit send-to-controller rule",
            )

        # 2. L-FIB: is the destination a local host?
        local_entry = self.lfib.lookup(packet.dst_mac)
        if local_entry is not None:
            return ForwardingDecision(
                outcome=ForwardingOutcome.LOCAL_DELIVERY,
                switch_id=self.switch_id,
                packet=packet,
                local_port=local_entry.port,
            )

        # 3. G-FIB: is the destination somewhere in the same group?
        candidates = self.gfib.query(packet.dst_mac)
        if candidates:
            duplicates = len(candidates) - 1
            self.duplicate_deliveries += duplicates
            return ForwardingDecision(
                outcome=ForwardingOutcome.INTRA_GROUP_FORWARD,
                switch_id=self.switch_id,
                packet=packet,
                # The G-FIB returns a sorted (memoized) tuple of candidates.
                target_switches=candidates,
                duplicate_count=duplicates,
            )

        # 4. Out of options locally: hand the packet to the controller.
        self.packets_to_controller += 1
        return ForwardingDecision(
            outcome=ForwardingOutcome.SENT_TO_CONTROLLER,
            switch_id=self.switch_id,
            packet=packet,
        )

    def _process_encapsulated(self, packet: Packet) -> ForwardingDecision:
        """Lines 22-29 of Fig. 5: a packet delivered over the underlay."""
        inner = packet.decapsulate()
        entry = self.lfib.lookup(inner.dst_mac)
        if entry is None:
            # The Bloom filter of the sender produced a false positive: the
            # destination is not actually here, so the copy is dropped.
            self.false_positive_drops += 1
            return ForwardingDecision(
                outcome=ForwardingOutcome.DROPPED_FALSE_POSITIVE,
                switch_id=self.switch_id,
                packet=packet,
                note="L-FIB miss after decapsulation",
            )
        return ForwardingDecision(
            outcome=ForwardingOutcome.DELIVERED_AFTER_DECAP,
            switch_id=self.switch_id,
            packet=packet,
            local_port=entry.port,
        )

    def _process_arp_request(self, packet: Packet) -> ForwardingDecision:
        """Live state dissemination levels i-iii of §III-D.3 for ARP requests."""
        # Level i: learn the source and check whether a local host answers.
        if self.lfib.lookup(packet.dst_mac) is not None:
            return ForwardingDecision(
                outcome=ForwardingOutcome.ARP_RESOLVED_LOCALLY,
                switch_id=self.switch_id,
                packet=packet,
            )
        # Level ii: the G-FIB may place the target inside the group; the
        # request is then sent to the designated switch for intra-group
        # "broadcasting".
        candidates = self.gfib.query(packet.dst_mac)
        if candidates:
            return ForwardingDecision(
                outcome=ForwardingOutcome.ARP_FORWARDED_TO_DESIGNATED,
                switch_id=self.switch_id,
                packet=packet,
                target_switches=candidates,
            )
        # Level iii: escalate to the controller.
        self.packets_to_controller += 1
        return ForwardingDecision(
            outcome=ForwardingOutcome.ARP_FORWARDED_TO_CONTROLLER,
            switch_id=self.switch_id,
            packet=packet,
        )

    # -- controller-driven configuration --------------------------------------

    def install_flow_rule(self, key: FlowKey, action: FlowAction, *, priority: int = 0, now: float = 0.0) -> None:
        """Install a controller-provided flow rule (Flow_Mod)."""
        self.flow_table.install(key, action, priority=priority, now=now)

    def advance_tables(self, now: float) -> int:
        """Eagerly expire aged flow rules at replay time ``now``.

        Driven from the systems' periodic tick so rules age in lockstep with
        the replay clock; each expiry notifies the controller via the
        ``flow_removed`` hook.  Returns the number of rules removed.
        """
        return len(self.flow_table.expire(now))

    def _on_rule_removed(self, rule: FlowRule, now: float, reason: RemovalReason) -> None:
        """Relay a table-initiated removal as ``flow_removed`` to the controller."""
        if self.flow_removed_handler is not None:
            self.flow_removed_handler(self.switch_id, rule, now, reason)

    def make_encap_header(self, destination_switch: int, destination_ip: IpAddress) -> EncapHeader:
        """Build the GRE-like header used to tunnel a packet to a peer switch."""
        return EncapHeader(
            source_switch=self.switch_id,
            destination_switch=destination_switch,
            tunnel_destination=destination_ip,
        )

    # -- state snapshots ----------------------------------------------------

    def lfib_snapshot(self) -> Dict[MacAddress, FibEntry]:
        """Snapshot of the local L-FIB for peer/state-link dissemination."""
        return self.lfib.snapshot()

    def storage_bytes(self) -> int:
        """Bytes of high-speed memory consumed by the G-FIB Bloom filters."""
        return self.gfib.storage_bytes()

    def reset_counters(self) -> None:
        """Zero the per-switch counters (between experiment phases)."""
        self.packets_processed = 0
        self.packets_to_controller = 0
        self.duplicate_deliveries = 0
        self.false_positive_drops = 0

    def __repr__(self) -> str:
        return (
            f"LazyCtrlEdgeSwitch(id={self.switch_id}, group={self.group_id}, "
            f"hosts={len(self.lfib)}, designated={self.is_designated})"
        )
