"""Forwarding decisions returned by the data-plane switches.

Every packet handed to a switch produces a :class:`ForwardingDecision`
describing *which mechanism* handled it (flow table, L-FIB, G-FIB, the
controller, or a drop) and where copies were sent.  The evaluation harness
aggregates these decisions into controller workload, duplicate-delivery and
latency statistics, so the decision record carries everything those metrics
need.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.common.packets import Packet


class ForwardingOutcome(enum.Enum):
    """How a packet was handled by the switch that processed it."""

    FLOW_TABLE_HIT = "flow_table_hit"
    LOCAL_DELIVERY = "local_delivery"
    INTRA_GROUP_FORWARD = "intra_group_forward"
    SENT_TO_CONTROLLER = "sent_to_controller"
    DELIVERED_AFTER_DECAP = "delivered_after_decap"
    DROPPED_FALSE_POSITIVE = "dropped_false_positive"
    DROPPED_NO_RULE = "dropped_no_rule"
    ARP_RESOLVED_LOCALLY = "arp_resolved_locally"
    ARP_FORWARDED_TO_DESIGNATED = "arp_forwarded_to_designated"
    ARP_FORWARDED_TO_CONTROLLER = "arp_forwarded_to_controller"


@dataclass(frozen=True, slots=True)
class ForwardingDecision:
    """The result of processing one packet at one switch."""

    outcome: ForwardingOutcome
    switch_id: int
    packet: Packet
    target_switches: tuple[int, ...] = ()
    local_port: Optional[int] = None
    duplicate_count: int = 0
    note: str = ""

    @property
    def involves_controller(self) -> bool:
        """Whether this decision generated work for the central controller."""
        return self.outcome in (
            ForwardingOutcome.SENT_TO_CONTROLLER,
            ForwardingOutcome.ARP_FORWARDED_TO_CONTROLLER,
        )

    @property
    def delivered(self) -> bool:
        """Whether the packet reached (or is on its way to) a destination."""
        return self.outcome in (
            ForwardingOutcome.FLOW_TABLE_HIT,
            ForwardingOutcome.LOCAL_DELIVERY,
            ForwardingOutcome.INTRA_GROUP_FORWARD,
            ForwardingOutcome.DELIVERED_AFTER_DECAP,
            ForwardingOutcome.ARP_RESOLVED_LOCALLY,
        )
