"""Traffic traces: flow records, generators, streams, mixes, the registry and replay."""

from repro.traffic.expand import expand_trace
from repro.traffic.flow import FlowRecord
from repro.traffic.mix import (
    TrafficComponentSpec,
    TrafficMixSpec,
    generate_mix_trace,
    stream_mix_trace,
)
from repro.traffic.models import (
    AllToAllShuffleParams,
    ElephantMiceParams,
    IncastHotspotParams,
    UniformBackgroundParams,
    generate_all_to_all_shuffle,
    generate_elephant_mice,
    generate_incast_hotspot,
    generate_uniform_background,
    stream_all_to_all_shuffle,
    stream_elephant_mice,
    stream_incast_hotspot,
    stream_uniform_background,
)
from repro.traffic.realistic import DIURNAL_PROFILE, RealisticTraceGenerator, RealisticTraceProfile
from repro.traffic.registry import (
    TrafficModelEntry,
    available_traffic_models,
    get_traffic_model,
    register_traffic_model,
    unregister_traffic_model,
)
from repro.traffic.replay import FlowSink, ReplayProgress, TraceReplayer
from repro.traffic.stream import (
    CHUNK_TARGET_FLOWS,
    ChunkWindow,
    FlowStream,
    GeneratedStream,
    MaterializedStream,
    MergedStream,
    TraceStatistics,
    accumulate_intensity,
    subdivide_span,
    windowed_chunks,
)
from repro.traffic.synthetic import (
    PAPER_SYNTHETIC_SPECS,
    SyntheticTraceGenerator,
    SyntheticTraceSpec,
    paper_synthetic_specs,
)
from repro.traffic.trace import PairActivity, Trace

__all__ = [
    "AllToAllShuffleParams",
    "CHUNK_TARGET_FLOWS",
    "ChunkWindow",
    "DIURNAL_PROFILE",
    "ElephantMiceParams",
    "FlowRecord",
    "FlowSink",
    "FlowStream",
    "GeneratedStream",
    "IncastHotspotParams",
    "MaterializedStream",
    "MergedStream",
    "PAPER_SYNTHETIC_SPECS",
    "PairActivity",
    "RealisticTraceGenerator",
    "RealisticTraceProfile",
    "ReplayProgress",
    "SyntheticTraceGenerator",
    "SyntheticTraceSpec",
    "Trace",
    "TraceReplayer",
    "TraceStatistics",
    "TrafficComponentSpec",
    "TrafficMixSpec",
    "TrafficModelEntry",
    "UniformBackgroundParams",
    "accumulate_intensity",
    "available_traffic_models",
    "expand_trace",
    "generate_all_to_all_shuffle",
    "generate_elephant_mice",
    "generate_incast_hotspot",
    "generate_mix_trace",
    "generate_uniform_background",
    "get_traffic_model",
    "paper_synthetic_specs",
    "register_traffic_model",
    "stream_all_to_all_shuffle",
    "stream_elephant_mice",
    "stream_incast_hotspot",
    "stream_mix_trace",
    "stream_uniform_background",
    "subdivide_span",
    "unregister_traffic_model",
    "windowed_chunks",
]
