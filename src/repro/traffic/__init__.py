"""Traffic traces: flow records, generators, expansion and replay."""

from repro.traffic.expand import expand_trace
from repro.traffic.flow import FlowRecord
from repro.traffic.realistic import DIURNAL_PROFILE, RealisticTraceGenerator, RealisticTraceProfile
from repro.traffic.replay import FlowSink, ReplayProgress, TraceReplayer
from repro.traffic.synthetic import (
    PAPER_SYNTHETIC_SPECS,
    SyntheticTraceGenerator,
    SyntheticTraceSpec,
    paper_synthetic_specs,
)
from repro.traffic.trace import PairActivity, Trace

__all__ = [
    "DIURNAL_PROFILE",
    "FlowRecord",
    "FlowSink",
    "PAPER_SYNTHETIC_SPECS",
    "PairActivity",
    "RealisticTraceGenerator",
    "RealisticTraceProfile",
    "ReplayProgress",
    "SyntheticTraceGenerator",
    "SyntheticTraceSpec",
    "Trace",
    "TraceReplayer",
    "expand_trace",
    "paper_synthetic_specs",
]
