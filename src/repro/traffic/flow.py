"""Flow records: the unit of the paper's traces.

A trace is a time-ordered sequence of *flow arrivals*: at ``start_time`` a
new flow opens between two hosts and subsequently carries ``packet_count``
packets / ``byte_count`` bytes.  Flow arrivals are what stresses the control
plane (each new flow may require a controller interaction), so the evaluation
is phrased almost entirely in terms of flow arrivals per second.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.bandwidth.profile import RateProfile


@dataclass(frozen=True, slots=True, order=True)
class FlowRecord:
    """One flow of a traffic trace.

    Records are ordered by start time (then flow id) so a sorted list of
    records is a valid replay order.
    """

    start_time: float
    flow_id: int
    src_host_id: int
    dst_host_id: int
    packet_count: int = 10
    byte_count: int = 15_000
    duration: float = 1.0
    # Excluded from ordering: flow ids are unique within a trace, so the
    # comparison never gets this far, and a None/profile mix must not break
    # sorting if it somehow did.
    rate_profile: Optional[RateProfile] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.start_time < 0:
            raise ValueError("flow start_time must be non-negative")
        if self.src_host_id == self.dst_host_id:
            raise ValueError("a flow must connect two distinct hosts")
        if self.packet_count <= 0:
            raise ValueError("packet_count must be positive")
        if self.byte_count <= 0:
            raise ValueError("byte_count must be positive")
        # A zero duration would divide-by-zero in rate derivation; negative
        # durations were always nonsense.
        if self.duration <= 0:
            raise ValueError("duration must be positive")

    @property
    def host_pair(self) -> tuple[int, int]:
        """The ordered (source, destination) host pair."""
        return (self.src_host_id, self.dst_host_id)

    @property
    def unordered_pair(self) -> tuple[int, int]:
        """The unordered host pair (used for pair-activity statistics)."""
        a, b = self.src_host_id, self.dst_host_id
        return (a, b) if a <= b else (b, a)

    @property
    def end_time(self) -> float:
        """Time at which the flow's last packet is sent."""
        return self.start_time + self.duration

    def resolved_rate_profile(self) -> RateProfile:
        """The attached rate profile, or the constant profile its totals imply.

        The derivation is deterministic — ``byte_count * 8 / duration`` over
        ``duration`` — so two replays of the same trace always account the
        same bytes to the same instants.
        """
        if self.rate_profile is not None:
            return self.rate_profile
        return RateProfile.constant(self.byte_count * 8.0 / self.duration, self.duration)
