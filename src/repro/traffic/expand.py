"""Trace expansion: the paper's "+30 % extra flows" stress scenario (§V-D).

To test whether LazyCtrl keeps the controller lazy when the traffic pattern
drifts, the paper expands the real trace "by introducing 30 % extra flows
among the hosts that did not communicate with each other in the real trace
during the time interval from 8 to 24".  These extra flows deliberately break
the locality that the initial grouping exploited, which is what makes the
incremental-update machinery earn its keep (Fig. 7 and Fig. 8, "expanded"
curves).
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import TrafficError
from repro.common.rng import make_rng
from repro.traffic.flow import FlowRecord
from repro.traffic.trace import Trace


def expand_trace(
    trace: Trace,
    *,
    extra_fraction: float = 0.30,
    window_start_hour: float = 8.0,
    window_end_hour: float = 24.0,
    seed: int = 2015,
    name: Optional[str] = None,
) -> Trace:
    """Return a new trace with extra flows among previously silent host pairs.

    ``extra_fraction`` extra flows (relative to the original flow count) are
    added, uniformly spread over ``[window_start_hour, window_end_hour)``,
    between host pairs that never communicated in the original trace.
    """
    if not 0.0 <= extra_fraction <= 5.0:
        raise TrafficError("extra_fraction must be in [0, 5]")
    if window_end_hour <= window_start_hour:
        raise TrafficError("the expansion window must have positive length")
    network = trace.network
    host_count = network.host_count()
    if host_count < 4:
        raise TrafficError("the topology is too small to expand the trace")

    rng = make_rng(seed, "expand-trace", trace.name)
    existing_pairs = trace.communicating_pairs()
    extra_count = int(round(trace.flow_count() * extra_fraction))
    next_flow_id = max((flow.flow_id for flow in trace.flows), default=-1) + 1

    window_start = window_start_hour * 3600.0
    window_span = (window_end_hour - window_start_hour) * 3600.0

    extra_flows: List[FlowRecord] = []
    attempts = 0
    max_attempts = extra_count * 80 + 1000
    while len(extra_flows) < extra_count and attempts < max_attempts:
        attempts += 1
        a = rng.randrange(host_count)
        b = rng.randrange(host_count)
        if a == b:
            continue
        pair = (a, b) if a < b else (b, a)
        if pair in existing_pairs:
            continue
        timestamp = window_start + rng.random() * window_span
        packet_count = max(1, int(rng.expovariate(1.0 / 10.0)) + 1)
        extra_flows.append(
            FlowRecord(
                start_time=timestamp,
                flow_id=next_flow_id + len(extra_flows),
                src_host_id=a,
                dst_host_id=b,
                packet_count=packet_count,
                byte_count=packet_count * 1400,
                duration=min(60.0, packet_count * 0.05),
            )
        )
    if len(extra_flows) < extra_count:
        # Small topologies can run out of silent pairs; in that case reuse
        # arbitrary cross-pairs rather than failing the experiment, but keep
        # the count faithful.
        while len(extra_flows) < extra_count:
            a = rng.randrange(host_count)
            b = rng.randrange(host_count)
            if a == b:
                continue
            timestamp = window_start + rng.random() * window_span
            extra_flows.append(
                FlowRecord(
                    start_time=timestamp,
                    flow_id=next_flow_id + len(extra_flows),
                    src_host_id=a,
                    dst_host_id=b,
                )
            )

    combined = list(trace.flows) + extra_flows
    return Trace(name or f"{trace.name}-expanded", network, combined)
