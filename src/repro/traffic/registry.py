"""The pluggable traffic-model registry.

PR 1 made control planes pluggable (``@register_control_plane``); this module
extends the same pattern to the *workload* half of a scenario.  A traffic
model is a named trace generator:

* each model owns a frozen **params dataclass** (its knobs, JSON-shaped) and
  a **factory** that turns a topology plus validated params into a
  :class:`~repro.traffic.trace.Trace`;
* :func:`register_traffic_model` registers the pair under a short name
  (``"realistic"``, ``"elephant-mice"``, ...); third-party generators plug
  in with the same decorator from their own modules;
* :class:`~repro.core.scenario.TraceSpec` references a model purely by name
  plus a plain params dict, which is what keeps scenario specs
  JSON-serializable and lets :class:`~repro.traffic.mix.TrafficMixSpec`
  compose any registered models into one merged trace.

Models whose params expose ``total_flows`` / ``duration_hours`` / ``seed``
(all the built-ins do) are automatically composable by the ``"mix"`` model,
which rescales those knobs per component.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, List, Mapping, Optional

from repro.common.registry import (
    NamedRegistry,
    make_entry_params,
    params_field_names,
    require_params_dataclass,
)
from repro.topology.network import DataCenterNetwork
from repro.traffic.stream import FlowStream, MaterializedStream
from repro.traffic.trace import Trace

#: Builds one trace over a network from validated params; ``name`` labels the
#: resulting trace (generators may fold it into their RNG stream labels).
TrafficModelFactory = Callable[..., Trace]

#: Builds one lazy chunk stream over a network from validated params.
TrafficStreamFactory = Callable[..., FlowStream]


@dataclasses.dataclass(frozen=True, slots=True)
class TrafficModelEntry:
    """One registered traffic model."""

    name: str
    factory: TrafficModelFactory
    params_type: type
    label: str
    description: str = ""
    stream_factory: Optional[TrafficStreamFactory] = None

    def param_names(self) -> frozenset:
        """Names of the knobs this model's params dataclass accepts."""
        return params_field_names(self.params_type)

    def make_params(self, params: Optional[Mapping[str, Any]] = None) -> Any:
        """Validate a raw params mapping into this model's params dataclass.

        Raises :class:`~repro.common.errors.ConfigurationError` naming any
        unknown or missing key.
        """
        return make_entry_params(
            self.params_type, params, path=f"traffic model {self.name!r} params"
        )

    def build(
        self,
        network: DataCenterNetwork,
        params: Optional[Mapping[str, Any]] = None,
        *,
        name: str = "trace",
    ) -> Trace:
        """Generate one trace over ``network`` from a raw params mapping."""
        return self.factory(network, self.make_params(params), name=name)

    def build_stream(
        self,
        network: DataCenterNetwork,
        params: Optional[Mapping[str, Any]] = None,
        *,
        name: str = "trace",
    ) -> FlowStream:
        """Generate one chunked flow stream over ``network`` from raw params.

        Models registered with a ``stream`` factory (all the built-ins)
        generate lazily in O(chunk) memory; models that only provide a trace
        factory are materialized once and presented through the stream
        protocol, so every consumer still works — just without the memory
        bound.
        """
        if self.stream_factory is not None:
            return self.stream_factory(network, self.make_params(params), name=name)
        return MaterializedStream.from_trace(self.build(network, params, name=name))


_REGISTRY: NamedRegistry[TrafficModelEntry] = NamedRegistry(
    kind="traffic model",
    name_label="traffic-model name",
    known_label="registered models",
)


def register_traffic_model(
    name: str,
    *,
    params: type,
    label: str | None = None,
    description: str = "",
    stream: Optional[TrafficStreamFactory] = None,
    replace: bool = False,
) -> Callable[[TrafficModelFactory], TrafficModelFactory]:
    """Register a traffic-model factory under ``name``.

    Use as a decorator on a factory taking ``(network, params, *, name)``
    and returning a :class:`~repro.traffic.trace.Trace`; ``params`` is the
    frozen dataclass describing the model's knobs.  ``stream`` optionally
    registers the model's native chunked generator (same signature,
    returning a :class:`~repro.traffic.stream.FlowStream`); without it the
    streaming API falls back to materializing the trace::

        @dataclasses.dataclass(frozen=True)
        class RingParams:
            total_flows: int = 10_000
            duration_hours: float = 24.0
            seed: int = 1

        @register_traffic_model("ring", params=RingParams, label="Ring")
        def build_ring_trace(network, params, *, name="ring"):
            ...
            return Trace(name, network, flows)
    """
    _REGISTRY.validate_name(name)
    require_params_dataclass("traffic model", name, params)

    def decorator(factory: TrafficModelFactory) -> TrafficModelFactory:
        _REGISTRY.add(
            name,
            TrafficModelEntry(
                name=name,
                factory=factory,
                params_type=params,
                label=label or name,
                description=description,
                stream_factory=stream,
            ),
            replace=replace,
        )
        return factory

    return decorator


def unregister_traffic_model(name: str) -> None:
    """Remove a registered traffic model (primarily for tests)."""
    _REGISTRY.remove(name)


def get_traffic_model(name: str) -> TrafficModelEntry:
    """Look a registered traffic model up by name."""
    return _REGISTRY.get(name)


def available_traffic_models() -> List[TrafficModelEntry]:
    """All registered traffic models, sorted by name."""
    return _REGISTRY.available()


def _register_builtin_traffic_models() -> None:
    """Register the built-in models (idempotent; called at import time)."""
    if "realistic" in _REGISTRY:
        return
    from repro.traffic.mix import TrafficMixSpec, generate_mix_trace, stream_mix_trace
    from repro.traffic.models import (
        AllToAllShuffleParams,
        ElephantMiceParams,
        IncastHotspotParams,
        UniformBackgroundParams,
        generate_all_to_all_shuffle,
        generate_elephant_mice,
        generate_incast_hotspot,
        generate_uniform_background,
        stream_all_to_all_shuffle,
        stream_elephant_mice,
        stream_incast_hotspot,
        stream_uniform_background,
    )
    from repro.traffic.realistic import RealisticTraceGenerator, RealisticTraceProfile
    from repro.traffic.synthetic import SyntheticTraceGenerator, SyntheticTraceSpec

    def _stream_realistic(network, params, *, name="real-like"):
        return RealisticTraceGenerator(network, params).stream(name=name)

    @register_traffic_model(
        "realistic",
        params=RealisticTraceProfile,
        label="Realistic day-long",
        description="Diurnal enterprise substitute: skewed pairs, tenant locality (paper §V-A)",
        stream=_stream_realistic,
    )
    def _build_realistic(network, params, *, name="real-like"):
        return RealisticTraceGenerator(network, params).generate(name=name)

    def _stream_synthetic(network, params, *, name="synthetic"):
        return SyntheticTraceGenerator(network).stream(params)

    @register_traffic_model(
        "synthetic",
        params=SyntheticTraceSpec,
        label="Synthetic p/q",
        description="The paper's p/q construction varying locality (Table II, §V-B)",
        stream=_stream_synthetic,
    )
    def _build_synthetic(network, params, *, name="synthetic"):
        return SyntheticTraceGenerator(network).generate(params)

    register_traffic_model(
        "elephant-mice",
        params=ElephantMiceParams,
        label="Elephant/mice",
        description="Few heavy long-lived pairs over a swarm of short mice flows",
        stream=stream_elephant_mice,
    )(generate_elephant_mice)

    register_traffic_model(
        "incast-hotspot",
        params=IncastHotspotParams,
        label="Incast hotspot",
        description="Fan-in onto a few hot destination hosts, optionally burst-windowed",
        stream=stream_incast_hotspot,
    )(generate_incast_hotspot)

    register_traffic_model(
        "all-to-all-shuffle",
        params=AllToAllShuffleParams,
        label="All-to-all shuffle",
        description="Periodic shuffle waves where participants exchange flows pairwise",
        stream=stream_all_to_all_shuffle,
    )(generate_all_to_all_shuffle)

    register_traffic_model(
        "uniform",
        params=UniformBackgroundParams,
        label="Uniform background",
        description="Locality-free baseline: uniform pairs, uniform arrival times",
        stream=stream_uniform_background,
    )(generate_uniform_background)

    register_traffic_model(
        "mix",
        params=TrafficMixSpec,
        label="Traffic mix",
        description="Weighted, time-windowed composition of other registered models",
        stream=stream_mix_trace,
    )(generate_mix_trace)


_register_builtin_traffic_models()
