"""Generator of a "real-like" day-long enterprise data-center trace.

The paper's real trace is proprietary, so we synthesize a substitute that
reproduces every published statistic the evaluation depends on:

* 272 edge switches, 6509 hosts (scaled by the caller if desired);
* a day-long span with a diurnal arrival-rate shape (quiet at night, busy
  during working hours);
* strongly skewed pair activity: only a small fraction of all host pairs
  communicate at all, and about 10 % of the active pairs carry ~90 % of the
  flows;
* traffic concentrated inside tenants (the source of the 0.85 average
  centrality), with a small configurable fraction of inter-tenant flows.

Generation is natively streamed: the active-pair skeleton is drawn once from
a setup RNG stream (small — capped at a multiple of the host count), and the
flows of each chunk come from a per-chunk RNG over a diurnally-weighted
window grid, so a multi-million-flow day never materializes unless asked to
(:meth:`RealisticTraceGenerator.generate` collects the stream into a
:class:`~repro.traffic.trace.Trace`).  The generator is deterministic given
its seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.common.errors import ConfigurationError, TrafficError
from repro.common.rng import make_rng, sample_zipf_index
from repro.topology.network import DataCenterNetwork
from repro.traffic.stream import ChunkWindow, FlowDraw, GeneratedStream, plan_windows
from repro.traffic.trace import Trace

#: Relative flow-arrival rate per hour of the day (diurnal enterprise shape).
DIURNAL_PROFILE: tuple[float, ...] = (
    0.35, 0.30, 0.28, 0.27, 0.28, 0.35,
    0.55, 0.80, 1.00, 1.15, 1.20, 1.15,
    1.05, 1.10, 1.20, 1.25, 1.20, 1.05,
    0.90, 0.75, 0.65, 0.55, 0.45, 0.40,
)


@dataclass(frozen=True, slots=True)
class RealisticTraceProfile:
    """Parameters of the real-like trace generator."""

    total_flows: int = 200_000
    duration_hours: float = 24.0
    intra_tenant_fraction: float = 0.95
    active_pair_fraction: float = 0.002
    hot_pair_fraction: float = 0.10
    hot_pair_flow_share: float = 0.90
    zipf_exponent: float = 0.9
    seed: int = 2015

    def __post_init__(self) -> None:
        if self.total_flows <= 0:
            raise ConfigurationError("total_flows must be positive")
        if self.duration_hours <= 0:
            raise ConfigurationError("duration_hours must be positive")
        for name in ("intra_tenant_fraction", "active_pair_fraction", "hot_pair_fraction", "hot_pair_flow_share"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        if self.zipf_exponent <= 0:
            raise ConfigurationError("zipf_exponent must be positive")


def diurnal_spans(duration_hours: float) -> List[Tuple[float, float, float]]:
    """The weighted hourly segments of a (possibly fractional) diurnal day.

    A fractional final hour keeps its hour's diurnal weight scaled by the
    fraction and its timestamps stay inside the fraction, so no flow lands
    past ``duration_hours``.
    """
    full_hours = int(duration_hours)
    final_fraction = duration_hours - full_hours
    spans = [
        (hour * 3600.0, (hour + 1) * 3600.0, DIURNAL_PROFILE[hour % 24])
        for hour in range(full_hours)
    ]
    if final_fraction > 0.0:
        spans.append(
            (
                full_hours * 3600.0,
                duration_hours * 3600.0,
                DIURNAL_PROFILE[full_hours % 24] * final_fraction,
            )
        )
    return spans


class RealisticTraceGenerator:
    """Builds a day-long trace with the paper's real-trace statistics."""

    def __init__(self, network: DataCenterNetwork, profile: RealisticTraceProfile | None = None) -> None:
        if network.host_count() < 4:
            raise TrafficError("the topology needs at least 4 hosts to generate traffic")
        self._network = network
        self._profile = profile or RealisticTraceProfile()

    @property
    def profile(self) -> RealisticTraceProfile:
        """The generation parameters in force."""
        return self._profile

    def stream(self, *, name: str = "real-like") -> GeneratedStream:
        """The trace as a lazily generated chunk stream."""
        profile = self._profile
        setup_rng = make_rng(profile.seed, "realistic-trace", name, "setup")
        active_pairs = self._select_active_pairs(setup_rng)
        if not active_pairs:
            raise TrafficError("no active host pairs could be selected")

        # Split active pairs into a hot set (few pairs, most flows) and a cold
        # set, reproducing the "90 % of flows from ~10 % of pairs" skew.
        hot_count = max(1, int(len(active_pairs) * profile.hot_pair_fraction))
        hot_pairs = active_pairs[:hot_count]
        cold_pairs = active_pairs[hot_count:] or active_pairs

        hot_share = profile.hot_pair_flow_share
        zipf_exponent = profile.zipf_exponent

        def emit(rng, window: ChunkWindow) -> List[FlowDraw]:
            draws: List[FlowDraw] = []
            start, span = window.start, window.span
            for _ in range(window.counts[0]):
                if rng.random() < hot_share:
                    index = sample_zipf_index(rng, len(hot_pairs), zipf_exponent)
                    src, dst = hot_pairs[index]
                else:
                    src, dst = cold_pairs[rng.randrange(len(cold_pairs))]
                if rng.random() < 0.5:
                    src, dst = dst, src
                packet_count = max(1, int(rng.expovariate(1.0 / 12.0)) + 1)
                draws.append(
                    (
                        start + rng.random() * span,
                        src,
                        dst,
                        packet_count,
                        packet_count * 1400,
                        min(60.0, packet_count * 0.05),
                    )
                )
            return draws

        return GeneratedStream(
            name,
            self._network,
            plan_windows(diurnal_spans(profile.duration_hours), profile.total_flows),
            emit,
            seed=profile.seed,
            rng_label=("realistic-trace", name),
            duration=profile.duration_hours * 3600.0,
        )

    def generate(self, *, name: str = "real-like") -> Trace:
        """Generate the trace, materialized (the streamed flows, collected)."""
        return Trace.from_stream(self.stream(name=name))

    # -- internals ---------------------------------------------------------

    def _select_active_pairs(self, rng) -> List[tuple[int, int]]:
        """Choose the set of host pairs that exchange traffic at all.

        Most active pairs are intra-tenant (drawn within a random tenant);
        the remainder are inter-tenant, which is the traffic the controller
        can never be shielded from entirely.
        """
        profile = self._profile
        network = self._network
        host_count = network.host_count()
        total_possible = host_count * (host_count - 1) // 2
        target_pairs = max(8, int(total_possible * profile.active_pair_fraction))
        # Keep the pair set tractable even for very large topologies.
        target_pairs = min(target_pairs, 40 * host_count)

        tenants = network.tenants.tenants()
        pairs: set[tuple[int, int]] = set()
        attempts = 0
        max_attempts = target_pairs * 50
        while len(pairs) < target_pairs and attempts < max_attempts:
            attempts += 1
            if tenants and rng.random() < profile.intra_tenant_fraction:
                tenant = tenants[rng.randrange(len(tenants))]
                if tenant.size < 2:
                    continue
                a, b = rng.sample(tenant.host_ids, 2)
            else:
                a = rng.randrange(host_count)
                b = rng.randrange(host_count)
                if a == b:
                    continue
            pair = (a, b) if a < b else (b, a)
            pairs.add(pair)
        ordered = sorted(pairs)
        rng.shuffle(ordered)
        return ordered
