"""Bounded-memory flow streams: the chunked trace pipeline.

A :class:`FlowStream` is the lazy counterpart of a materialized
:class:`~repro.traffic.trace.Trace`: a re-iterable sequence of time-ordered
*chunks* of :class:`~repro.traffic.flow.FlowRecord`, bound to a topology and
carrying its nominal ``total_flows`` and ``duration`` up front.  The traffic
generators emit streams natively, the replayer drains them chunk by chunk,
and ``Trace`` is now just the convenience consumer that concatenates every
chunk into a list — so a multi-million-flow replay never holds more than one
chunk (plus the control plane under test) in memory.

The contract every stream upholds:

* **chunks are time-ordered** — flows within a chunk are sorted by
  ``(start_time, src, dst, payload)`` and every flow in chunk ``n+1`` starts
  at or after every flow in chunk ``n``;
* **flow ids are assigned in emission order** — chunk concatenation yields
  ids ``0..n-1`` ascending, which is exactly the canonical order the
  materialized path produces;
* **re-iterable** — :meth:`FlowStream.chunks` can be called repeatedly and
  regenerates the identical sequence (generation is a pure function of the
  stream's parameters), which is what lets the runner compute a warm-up
  intensity matrix and then replay from the top without buffering;
* **deterministic per-chunk seeding** — each chunk of a generated stream
  draws from ``make_rng(seed, label, "chunk", index)``, so chunk ``k`` can
  be produced without generating chunks ``0..k-1``'s flows, and the chunk
  grid is a pure function of the generation params (never a runtime knob —
  otherwise two runs with different chunk sizes would diverge).

:class:`TraceStatistics` is the single accumulating pass shared by streams
and traces: it folds switch intensity, pair activity and hourly arrival
counts out of one walk over the flows, instead of re-scanning a materialized
list per view.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from collections import Counter
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.common.errors import TrafficError
from repro.common.rng import make_rng
from repro.datastructures.intensity import IntensityMatrix
from repro.topology.network import DataCenterNetwork
from repro.traffic.flow import FlowRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (trace imports stream)
    from repro.traffic.trace import PairActivity, Trace

#: Target flows per generated chunk.  A model constant, deliberately not a
#: runtime knob: the chunk grid feeds the per-chunk RNG derivation, so making
#: it configurable would let two "identical" runs produce different traces.
CHUNK_TARGET_FLOWS = 50_000

#: A flow before it has an identity: (start_time, src, dst, packets, bytes,
#: duration).  Generators emit draws, the stream sorts them and mints ids.
FlowDraw = Tuple[float, int, int, int, int, float]


@runtime_checkable
class FlowStream(Protocol):
    """Anything that can produce a trace as time-ordered chunks."""

    name: str
    network: DataCenterNetwork

    @property
    def total_flows(self) -> int:
        """Nominal number of flows the stream will emit."""
        ...

    @property
    def duration(self) -> float:
        """Nominal timeline length in seconds."""
        ...

    def chunks(self) -> Iterator[Sequence[FlowRecord]]:
        """Yield the flows as time-ordered chunks (re-iterable)."""
        ...


# -- the one-pass statistics accumulator --------------------------------------


def accumulate_intensity(
    network: DataCenterNetwork,
    flows: Iterable[FlowRecord],
    matrix: Optional[IntensityMatrix] = None,
) -> IntensityMatrix:
    """Fold flows into a switch-level intensity matrix, and nothing else.

    The intensity-only fast path: the warm-up grouping and the Fig. 6
    analysis only need the matrix, so they skip the per-flow hourly/pair
    accounting :class:`TraceStatistics` would also do.
    """
    if matrix is None:
        matrix = IntensityMatrix(network.switch_ids())
    pair_of = network.switch_pair_of_hosts
    record = matrix.record
    for flow in flows:
        src_switch, dst_switch = pair_of(flow.src_host_id, flow.dst_host_id)
        record(src_switch, dst_switch, 1.0)
    return matrix


class TraceStatistics:
    """Accumulates every derived trace view in one pass over flow arrivals.

    Feed it flows with :meth:`observe` (or :meth:`observe_all`) and read the
    finished views: the switch-level :attr:`intensity` matrix, the
    :meth:`pair_activity` concentration summary, :meth:`hourly_flow_counts`
    and :meth:`communicating_pairs`.  One accumulator walk replaces the
    per-view re-scans the materialized ``Trace`` used to do, and is the only
    way to compute these views for a stream without materializing it.

    ``track_pairs=False`` drops the per-pair counter — the only view whose
    memory grows with distinct pairs rather than with topology size — which
    is what the bounded-memory replay path uses.  ``track_intensity=False``
    skips the per-flow switch lookup for passes that only need the
    topology-independent views.
    """

    __slots__ = ("network", "intensity", "flow_count", "last_arrival", "_pair_counts", "_hourly")

    def __init__(
        self,
        network: DataCenterNetwork,
        *,
        track_pairs: bool = True,
        track_intensity: bool = True,
    ) -> None:
        self.network = network
        self.intensity: Optional[IntensityMatrix] = (
            IntensityMatrix(network.switch_ids()) if track_intensity else None
        )
        self.flow_count = 0
        self.last_arrival = 0.0
        self._pair_counts: Optional[Counter] = Counter() if track_pairs else None
        self._hourly: Dict[int, int] = {}

    def observe(self, flow: FlowRecord) -> None:
        """Fold one flow arrival into every view."""
        if self.intensity is not None:
            src_switch, dst_switch = self.network.switch_pair_of_hosts(
                flow.src_host_id, flow.dst_host_id
            )
            self.intensity.record(src_switch, dst_switch, 1.0)
        self.flow_count += 1
        if flow.start_time > self.last_arrival:
            self.last_arrival = flow.start_time
        hour = int(flow.start_time // 3600)
        self._hourly[hour] = self._hourly.get(hour, 0) + 1
        if self._pair_counts is not None:
            self._pair_counts[flow.unordered_pair] += 1

    def observe_all(self, flows: Iterable[FlowRecord]) -> "TraceStatistics":
        """Fold a whole iterable of flows; returns self for chaining."""
        for flow in flows:
            self.observe(flow)
        return self

    def hourly_flow_counts(self, *, hours: int = 24) -> List[int]:
        """Flow arrivals per hour over the first ``hours`` hours."""
        return [self._hourly.get(hour, 0) for hour in range(hours)]

    def pair_activity(self) -> "PairActivity":
        """Distinct communicating pairs and the busiest-decile flow share."""
        from repro.traffic.trace import PairActivity

        if self._pair_counts is None:
            raise TrafficError("pair activity was not tracked by this accumulator")
        counts = self._pair_counts
        if not counts:
            return PairActivity(total_flows=0, distinct_pairs=0, top_decile_share=0.0)
        total = sum(counts.values())
        ranked = sorted(counts.values(), reverse=True)
        top_count = max(1, len(ranked) // 10)
        top_share = sum(ranked[:top_count]) / total
        return PairActivity(total_flows=total, distinct_pairs=len(counts), top_decile_share=top_share)

    def communicating_pairs(self) -> set[tuple[int, int]]:
        """The set of unordered host pairs that exchanged at least one flow."""
        if self._pair_counts is None:
            raise TrafficError("pair activity was not tracked by this accumulator")
        return set(self._pair_counts)


# -- chunk planning ------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ChunkWindow:
    """One planned chunk: a half-open time window plus per-category counts.

    Most models draw one category of flows; models that layer several flow
    populations with different time supports (incast's hotspot burst over its
    background) carry one count per category.
    """

    index: int
    start: float
    end: float
    counts: Tuple[int, ...]

    @property
    def flow_count(self) -> int:
        """Total flows planned for this chunk across all categories."""
        return sum(self.counts)

    @property
    def span(self) -> float:
        """Window length in seconds."""
        return self.end - self.start


def allocate_counts(total: int, weights: Sequence[float]) -> List[int]:
    """Split ``total`` across ``weights`` exactly, by largest remainder.

    Floors every proportional share and hands the leftover units to the
    largest fractional parts (ties broken by position), so the result is a
    pure function of ``(total, weights)`` and always sums to ``total``.

    ``repro.traffic.mix._component_flow_counts`` is the same algorithm with
    a different determinism contract (fsum-normalized shares, fingerprint
    tie-break) because mixes must additionally be invariant under component
    reordering; here position *is* the identity (windows never reorder), and
    the result feeds the per-chunk RNG grid, so the arithmetic must never
    change.  Keep the two in sync deliberately, not accidentally.
    """
    weight_sum = sum(weights)
    if weight_sum <= 0 or total <= 0:
        return [0] * len(weights)
    shares = [total * weight / weight_sum for weight in weights]
    counts = [int(share) for share in shares]
    leftover = total - sum(counts)
    by_remainder = sorted(range(len(shares)), key=lambda i: (counts[i] - shares[i], i))
    for index in by_remainder[:leftover]:
        counts[index] += 1
    return counts


def subdivide_span(
    start: float,
    end: float,
    flow_count: int,
    *,
    target_flows: int = CHUNK_TARGET_FLOWS,
) -> List[Tuple[float, float]]:
    """Split ``[start, end)`` into equal sub-windows sized for ``flow_count``.

    Produces ``ceil(flow_count / target_flows)`` consecutive windows (at
    least one), with the final window's end pinned to ``end`` exactly so
    float step accumulation never leaks past the span.  This is the one
    chunk-grid subdivision every generator shares — the grid feeds the
    per-chunk RNG derivation, so there must be exactly one implementation.
    """
    parts = max(1, -(-flow_count // max(1, target_flows)))  # ceil division
    step = (end - start) / parts
    return [
        (start + part * step, end if part == parts - 1 else start + (part + 1) * step)
        for part in range(parts)
    ]


def plan_windows(
    spans: Sequence[Tuple[float, float, float]],
    total_flows: int,
    *,
    target_flows: int = CHUNK_TARGET_FLOWS,
) -> List[ChunkWindow]:
    """Plan the chunk grid over weighted time spans.

    ``spans`` lists ``(start, end, weight)`` segments of the timeline (hours
    of a diurnal day, phases of a shuffle, or just the whole duration).
    Every span receives flows in proportion to its weight; spans whose
    allocation exceeds ``target_flows`` are subdivided into equal sub-windows
    so no chunk is expected to hold more than roughly ``target_flows`` flows.
    """
    span_counts = allocate_counts(total_flows, [weight for _, _, weight in spans])
    windows: List[ChunkWindow] = []
    index = 0
    for (start, end, _), count in zip(spans, span_counts):
        bounds = subdivide_span(start, end, count, target_flows=target_flows)
        part_counts = allocate_counts(count, [1.0] * len(bounds))
        for (part_start, part_end), part_count in zip(bounds, part_counts):
            windows.append(
                ChunkWindow(index=index, start=part_start, end=part_end, counts=(part_count,))
            )
            index += 1
    return windows


def uniform_spans(duration_seconds: float) -> List[Tuple[float, float, float]]:
    """The degenerate span list for a uniform-rate model: one flat segment."""
    return [(0.0, duration_seconds, 1.0)]


# -- stream implementations ----------------------------------------------------


class FlowStreamBase:
    """Shared behaviour of every concrete stream: views, iteration, materialization."""

    name: str
    network: DataCenterNetwork

    def chunks(self) -> Iterator[Sequence[FlowRecord]]:
        raise NotImplementedError

    @property
    def total_flows(self) -> int:
        raise NotImplementedError

    @property
    def duration(self) -> float:
        raise NotImplementedError

    def __iter__(self) -> Iterator[FlowRecord]:
        for chunk in self.chunks():
            yield from chunk

    def statistics(
        self,
        *,
        start: float = 0.0,
        end: Optional[float] = None,
        track_pairs: bool = True,
    ) -> TraceStatistics:
        """Accumulate every derived view over ``[start, end)`` in one pass.

        ``end=None`` covers the whole stream including a flow arriving
        exactly at the nominal duration.
        """
        stats = TraceStatistics(self.network, track_pairs=track_pairs)
        for chunk in windowed_chunks(self, start=start, end=end):
            stats.observe_all(chunk)
        return stats

    def switch_intensity(self, *, start: float = 0.0, end: Optional[float] = None) -> IntensityMatrix:
        """The switch-level intensity matrix over a window, in one pass.

        This is what lets a control plane's ``prepare`` warm up from a
        stream exactly as it does from a materialized trace.  Generation
        stops at the first chunk past ``end``, so a warm-up window only ever
        generates its own chunks.
        """
        matrix = IntensityMatrix(self.network.switch_ids())
        for chunk in windowed_chunks(self, start=start, end=end):
            accumulate_intensity(self.network, chunk, matrix)
        return matrix

    def materialize(self, *, name: Optional[str] = None) -> "Trace":
        """Collect the whole stream into a materialized :class:`Trace`."""
        from repro.traffic.trace import Trace

        return Trace(name or self.name, self.network, self)


#: Produces one chunk's draws: ``(rng, window) -> list of FlowDraw``.
ChunkEmitter = Callable[..., List[FlowDraw]]


class GeneratedStream(FlowStreamBase):
    """A stream produced chunk-by-chunk from a planned window grid.

    ``emit(rng, window)`` returns the chunk's raw draws; the stream sorts
    them canonically, mints ascending flow ids and validates nothing — the
    emitters only produce hosts that exist because they draw from the
    topology they were built over.
    """

    def __init__(
        self,
        name: str,
        network: DataCenterNetwork,
        windows: Sequence[ChunkWindow],
        emit: ChunkEmitter,
        *,
        seed: int,
        rng_label: str | Tuple[str, ...],
        duration: float,
    ) -> None:
        self.name = name
        self.network = network
        self._windows = list(windows)
        self._emit = emit
        self._seed = seed
        self._rng_labels = (rng_label,) if isinstance(rng_label, str) else tuple(rng_label)
        self._duration = duration
        self._total_flows = sum(window.flow_count for window in self._windows)

    @property
    def total_flows(self) -> int:
        return self._total_flows

    @property
    def duration(self) -> float:
        return self._duration

    @property
    def chunk_count(self) -> int:
        """Number of planned chunks (empty windows included)."""
        return len(self._windows)

    def chunks(self) -> Iterator[Sequence[FlowRecord]]:
        return self.chunks_from(0.0)

    def chunks_from(self, start: float) -> Iterator[Sequence[FlowRecord]]:
        """Chunks that may contain flows at or after ``start``, ids intact.

        Windows ending strictly before ``start`` are *skipped without
        generating*: their planned ``flow_count`` is added to the flow-id
        cursor instead, which is valid because every emitter draws exactly
        its window's planned counts.  This makes a time-window shard's
        replay cost proportional to its own window rather than to the whole
        timeline before it.  The boundary window (``end == start``) is
        still generated — an emitter may draw an arrival exactly on its
        window's end edge, and ownership of that instant belongs to the
        consumer's trimming, not to the generator.
        """
        flow_id = 0
        for window in self._windows:
            if window.flow_count <= 0:
                continue
            if window.end < start:
                flow_id += window.flow_count
                continue
            rng = make_rng(self._seed, *self._rng_labels, "chunk", str(window.index))
            draws = self._emit(rng, window)
            draws.sort()
            chunk = [
                FlowRecord(
                    start_time=draw[0],
                    flow_id=flow_id + offset,
                    src_host_id=draw[1],
                    dst_host_id=draw[2],
                    packet_count=draw[3],
                    byte_count=draw[4],
                    duration=draw[5],
                )
                for offset, draw in enumerate(draws)
            ]
            flow_id += len(chunk)
            yield chunk


class MaterializedStream(FlowStreamBase):
    """An already-materialized flow list presented through the stream protocol.

    Adapts third-party trace factories (which return a ``Trace``) and lets
    every stream consumer also accept materialized input.  Chunks are list
    slices, so iteration allocates one chunk at a time but the backing list
    stays resident — this adapter provides the *interface*, not the memory
    bound.
    """

    def __init__(
        self,
        name: str,
        network: DataCenterNetwork,
        flows: Sequence[FlowRecord],
        *,
        duration: Optional[float] = None,
        chunk_flows: int = CHUNK_TARGET_FLOWS,
    ) -> None:
        if chunk_flows <= 0:
            raise TrafficError("chunk_flows must be positive")
        self.name = name
        self.network = network
        self._flows = flows
        self._chunk_flows = chunk_flows
        self._duration = duration

    @classmethod
    def from_trace(cls, trace: "Trace", *, chunk_flows: int = CHUNK_TARGET_FLOWS) -> "MaterializedStream":
        """Wrap a materialized trace (flows are shared, not copied)."""
        return cls(
            trace.name, trace.network, trace.flows, duration=trace.duration, chunk_flows=chunk_flows
        )

    @property
    def total_flows(self) -> int:
        return len(self._flows)

    @property
    def duration(self) -> float:
        if self._duration is not None:
            return self._duration
        return self._flows[-1].start_time if self._flows else 0.0

    def chunks(self) -> Iterator[Sequence[FlowRecord]]:
        flows = self._flows
        for offset in range(0, len(flows), self._chunk_flows):
            yield flows[offset : offset + self._chunk_flows]


#: Canonical merge key: everything but the (re-assigned) flow id.  Identical
#: to the materialized mix's canonical sort, which is what makes the merged
#: stream independent of component order.
def merge_key(flow: FlowRecord) -> FlowDraw:
    """The canonical (time, endpoints, payload) ordering key of a flow."""
    return (
        flow.start_time,
        flow.src_host_id,
        flow.dst_host_id,
        flow.packet_count,
        flow.byte_count,
        flow.duration,
    )


class MergedStream(FlowStreamBase):
    """A k-way merge of component streams onto one renumbered timeline.

    Each part is ``(stream, offset_seconds, span_seconds)``: the component's
    local timeline is clipped to ``[0, span)`` and shifted by ``offset``
    (its window start).  The merge keeps every component's *current* chunk
    resident plus one output chunk — O(components × chunk) memory, still
    independent of trace length.
    """

    def __init__(
        self,
        name: str,
        network: DataCenterNetwork,
        parts: Sequence[Tuple[FlowStream, float, float]],
        *,
        duration: float,
        chunk_flows: int = CHUNK_TARGET_FLOWS,
    ) -> None:
        self.name = name
        self.network = network
        self._parts = list(parts)
        self._duration = duration
        self._chunk_flows = chunk_flows

    @property
    def total_flows(self) -> int:
        return sum(stream.total_flows for stream, _, _ in self._parts)

    @property
    def duration(self) -> float:
        return self._duration

    @staticmethod
    def _shifted(stream: FlowStream, offset: float, span: float) -> Iterator[FlowDraw]:
        for chunk in stream.chunks():
            for flow in chunk:
                # Models that ignore duration_hours could emit past the
                # component's window; chunks are time-ordered, so the first
                # flow at or past the span ends the component without
                # generating (and discarding) everything after it.
                if flow.start_time >= span:
                    return
                key = merge_key(flow)
                yield (key[0] + offset, *key[1:]) if offset else key

    def chunks(self) -> Iterator[Sequence[FlowRecord]]:
        iterators = [self._shifted(stream, offset, span) for stream, offset, span in self._parts]
        merged = heapq.merge(*iterators)
        chunk: List[FlowRecord] = []
        flow_id = 0
        for key in merged:
            chunk.append(
                FlowRecord(
                    start_time=key[0],
                    flow_id=flow_id,
                    src_host_id=key[1],
                    dst_host_id=key[2],
                    packet_count=key[3],
                    byte_count=key[4],
                    duration=key[5],
                )
            )
            flow_id += 1
            if len(chunk) >= self._chunk_flows:
                yield chunk
                chunk = []
        if chunk:
            yield chunk
        elif flow_id == 0:
            # Match the materialized path, which refuses to build an empty
            # mix trace, so the streamed and materialized contracts agree.
            raise TrafficError("the traffic mix produced no flows")


# -- windowed consumption ------------------------------------------------------


def windowed_chunks(
    source: FlowStream, *, start: float = 0.0, end: Optional[float] = None
) -> Iterator[Sequence[FlowRecord]]:
    """Drain a stream's chunks trimmed to the replay window ``[start, end)``.

    Chunks entirely before ``start`` are skipped, the stream is abandoned at
    the first chunk starting at or past ``end``, and boundary chunks are
    bisect-trimmed — so consuming a sub-window never generates flows past it.
    Sources that can seek (:meth:`GeneratedStream.chunks_from`) additionally
    never generate the chunks *before* the window, which is what makes a
    time-window shard's cost proportional to its own span.
    """
    if start > 0.0 and hasattr(source, "chunks_from"):
        source_chunks = source.chunks_from(start)
    else:
        source_chunks = source.chunks()
    for chunk in source_chunks:
        if not chunk:
            continue
        if chunk[-1].start_time < start:
            continue
        if end is not None and chunk[0].start_time >= end:
            break
        lo = 0
        hi = len(chunk)
        if chunk[0].start_time < start:
            lo = bisect_left(chunk, start, key=lambda flow: flow.start_time)
        if end is not None and chunk[-1].start_time >= end:
            hi = bisect_left(chunk, end, lo, key=lambda flow: flow.start_time)
        if lo == 0 and hi == len(chunk):
            yield chunk
        elif lo < hi:
            yield chunk[lo:hi]
