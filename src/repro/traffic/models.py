"""Built-in traffic models beyond the paper's two generators.

Each model is a deterministic trace generator with a frozen params dataclass,
registered by name in :mod:`repro.traffic.registry`.  They cover the workload
shapes the paper's evaluation gestures at but never isolates:

* **elephant/mice** — a handful of heavy, long-lived host pairs (elephants)
  over a swarm of short mice flows; locality lives in the elephants, so
  grouping gains hinge on where those few pairs sit;
* **incast hotspot** — many sources fanning in on a few hot destination
  hosts (storage frontends, reducers), optionally compressed into a burst
  window to model a synchronized stampede;
* **all-to-all shuffle** — periodic waves in which a participant set
  exchanges flows pairwise (the MapReduce shuffle shape), the workload with
  the *least* exploitable pair locality;
* **uniform background** — uniformly random pairs at uniformly random
  times, the locality-free floor every other model is compared against.

All generators derive their RNG stream from the params seed only (not the
trace name), so a model's output is a pure function of its params over a
given topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.common.errors import ConfigurationError, TrafficError
from repro.common.rng import make_rng, sample_zipf_index
from repro.topology.network import DataCenterNetwork
from repro.traffic.flow import FlowRecord
from repro.traffic.trace import Trace


def _require_hosts(network: DataCenterNetwork, minimum: int = 4) -> int:
    host_count = network.host_count()
    if host_count < minimum:
        raise TrafficError(f"the topology needs at least {minimum} hosts to generate traffic")
    return host_count


def _random_pair(rng, host_count: int) -> Tuple[int, int]:
    src = rng.randrange(host_count)
    dst = rng.randrange(host_count)
    while dst == src:
        dst = rng.randrange(host_count)
    return src, dst


def _mice_payload(rng) -> Tuple[int, int, float]:
    packet_count = max(1, int(rng.expovariate(1.0 / 8.0)) + 1)
    return packet_count, packet_count * 1400, min(30.0, packet_count * 0.05)


# -- elephant / mice ----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ElephantMiceParams:
    """Knobs of the elephant/mice model."""

    total_flows: int = 200_000
    duration_hours: float = 24.0
    elephant_pair_count: int = 32
    elephant_flow_fraction: float = 0.2
    elephant_intra_tenant_fraction: float = 0.9
    elephant_packet_mean: float = 400.0
    seed: int = 2015

    def __post_init__(self) -> None:
        if self.total_flows <= 0:
            raise ConfigurationError("total_flows must be positive")
        if self.duration_hours <= 0:
            raise ConfigurationError("duration_hours must be positive")
        if self.elephant_pair_count < 1:
            raise ConfigurationError("elephant_pair_count must be at least 1")
        if not 0.0 <= self.elephant_flow_fraction <= 1.0:
            raise ConfigurationError("elephant_flow_fraction must be in [0, 1]")
        if not 0.0 <= self.elephant_intra_tenant_fraction <= 1.0:
            raise ConfigurationError("elephant_intra_tenant_fraction must be in [0, 1]")
        if self.elephant_packet_mean <= 0:
            raise ConfigurationError("elephant_packet_mean must be positive")


def generate_elephant_mice(
    network: DataCenterNetwork, params: ElephantMiceParams, *, name: str = "elephant-mice"
) -> Trace:
    """Few heavy pairs (elephants) over many light random flows (mice)."""
    host_count = _require_hosts(network)
    rng = make_rng(params.seed, "elephant-mice")

    tenants = [tenant for tenant in network.tenants.tenants() if tenant.size >= 2]
    elephants: List[Tuple[int, int]] = []
    seen = set()
    attempts = 0
    while len(elephants) < params.elephant_pair_count and attempts < params.elephant_pair_count * 50:
        attempts += 1
        if tenants and rng.random() < params.elephant_intra_tenant_fraction:
            tenant = tenants[rng.randrange(len(tenants))]
            a, b = rng.sample(tenant.host_ids, 2)
        else:
            a, b = _random_pair(rng, host_count)
        pair = (a, b) if a < b else (b, a)
        if pair not in seen:
            seen.add(pair)
            elephants.append(pair)
    if not elephants:
        raise TrafficError("no elephant pairs could be selected")

    seconds = params.duration_hours * 3600.0
    flows: List[FlowRecord] = []
    for flow_id in range(params.total_flows):
        timestamp = rng.random() * seconds
        if rng.random() < params.elephant_flow_fraction:
            src, dst = elephants[rng.randrange(len(elephants))]
            if rng.random() < 0.5:
                src, dst = dst, src
            packet_count = max(1, int(rng.expovariate(1.0 / params.elephant_packet_mean)) + 1)
            byte_count = packet_count * 1400
            duration = min(600.0, packet_count * 0.05)
        else:
            src, dst = _random_pair(rng, host_count)
            packet_count, byte_count, duration = _mice_payload(rng)
        flows.append(
            FlowRecord(
                start_time=timestamp,
                flow_id=flow_id,
                src_host_id=src,
                dst_host_id=dst,
                packet_count=packet_count,
                byte_count=byte_count,
                duration=duration,
            )
        )
    return Trace(name, network, flows)


# -- incast hotspot -----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class IncastHotspotParams:
    """Knobs of the incast-hotspot model."""

    total_flows: int = 200_000
    duration_hours: float = 24.0
    hotspot_count: int = 4
    hotspot_flow_fraction: float = 0.7
    hotspot_zipf_exponent: float = 0.8
    burst_window_hours: Tuple[float, float] | None = None
    seed: int = 2015

    def __post_init__(self) -> None:
        if self.total_flows <= 0:
            raise ConfigurationError("total_flows must be positive")
        if self.duration_hours <= 0:
            raise ConfigurationError("duration_hours must be positive")
        if self.hotspot_count < 1:
            raise ConfigurationError("hotspot_count must be at least 1")
        if not 0.0 <= self.hotspot_flow_fraction <= 1.0:
            raise ConfigurationError("hotspot_flow_fraction must be in [0, 1]")
        if self.hotspot_zipf_exponent <= 0:
            raise ConfigurationError("hotspot_zipf_exponent must be positive")
        if self.burst_window_hours is not None:
            start, end = self.burst_window_hours
            if start < 0 or end > self.duration_hours or end <= start:
                raise ConfigurationError(
                    "burst_window_hours must lie inside [0, duration_hours] with positive length"
                )
            object.__setattr__(self, "burst_window_hours", (float(start), float(end)))


def generate_incast_hotspot(
    network: DataCenterNetwork, params: IncastHotspotParams, *, name: str = "incast-hotspot"
) -> Trace:
    """Fan-in traffic onto a few hot destination hosts."""
    host_count = _require_hosts(network)
    rng = make_rng(params.seed, "incast-hotspot")

    hotspot_count = min(params.hotspot_count, host_count - 1)
    hotspots = rng.sample(range(host_count), hotspot_count)

    seconds = params.duration_hours * 3600.0
    if params.burst_window_hours is not None:
        burst_start = params.burst_window_hours[0] * 3600.0
        burst_span = (params.burst_window_hours[1] - params.burst_window_hours[0]) * 3600.0
    else:
        burst_start, burst_span = 0.0, seconds

    flows: List[FlowRecord] = []
    for flow_id in range(params.total_flows):
        if rng.random() < params.hotspot_flow_fraction:
            dst = hotspots[sample_zipf_index(rng, len(hotspots), params.hotspot_zipf_exponent)]
            src = rng.randrange(host_count)
            while src == dst:
                src = rng.randrange(host_count)
            timestamp = burst_start + rng.random() * burst_span
        else:
            src, dst = _random_pair(rng, host_count)
            timestamp = rng.random() * seconds
        packet_count, byte_count, duration = _mice_payload(rng)
        flows.append(
            FlowRecord(
                start_time=timestamp,
                flow_id=flow_id,
                src_host_id=src,
                dst_host_id=dst,
                packet_count=packet_count,
                byte_count=byte_count,
                duration=duration,
            )
        )
    return Trace(name, network, flows)


# -- all-to-all shuffle -------------------------------------------------------


@dataclass(frozen=True, slots=True)
class AllToAllShuffleParams:
    """Knobs of the all-to-all shuffle model."""

    total_flows: int = 200_000
    duration_hours: float = 24.0
    phase_count: int = 4
    phase_duration_hours: float = 0.5
    participant_fraction: float = 1.0
    seed: int = 2015

    def __post_init__(self) -> None:
        if self.total_flows <= 0:
            raise ConfigurationError("total_flows must be positive")
        if self.duration_hours <= 0:
            raise ConfigurationError("duration_hours must be positive")
        if self.phase_count < 1:
            raise ConfigurationError("phase_count must be at least 1")
        if not 0 < self.phase_duration_hours <= self.duration_hours / self.phase_count:
            raise ConfigurationError(
                "phase_duration_hours must be positive and phases must fit the duration "
                "(phase_count * phase_duration_hours <= duration_hours)"
            )
        if not 0.0 < self.participant_fraction <= 1.0:
            raise ConfigurationError("participant_fraction must be in (0, 1]")


def generate_all_to_all_shuffle(
    network: DataCenterNetwork, params: AllToAllShuffleParams, *, name: str = "all-to-all-shuffle"
) -> Trace:
    """Periodic shuffle waves: participants exchange flows pairwise."""
    host_count = _require_hosts(network)
    rng = make_rng(params.seed, "all-to-all-shuffle")

    participant_count = max(2, int(round(host_count * params.participant_fraction)))
    phase_span = params.phase_duration_hours * 3600.0
    # Phases are evenly spaced across the day, each starting on its slot.
    slot = params.duration_hours * 3600.0 / params.phase_count

    per_phase = [params.total_flows // params.phase_count] * params.phase_count
    for index in range(params.total_flows % params.phase_count):
        per_phase[index] += 1

    flows: List[FlowRecord] = []
    flow_id = 0
    for phase in range(params.phase_count):
        participants = rng.sample(range(host_count), min(participant_count, host_count))
        phase_start = phase * slot
        for _ in range(per_phase[phase]):
            src = participants[rng.randrange(len(participants))]
            dst = participants[rng.randrange(len(participants))]
            while dst == src:
                dst = participants[rng.randrange(len(participants))]
            timestamp = phase_start + rng.random() * phase_span
            packet_count, byte_count, duration = _mice_payload(rng)
            flows.append(
                FlowRecord(
                    start_time=timestamp,
                    flow_id=flow_id,
                    src_host_id=src,
                    dst_host_id=dst,
                    packet_count=packet_count,
                    byte_count=byte_count,
                    duration=duration,
                )
            )
            flow_id += 1
    return Trace(name, network, flows)


# -- uniform background -------------------------------------------------------


@dataclass(frozen=True, slots=True)
class UniformBackgroundParams:
    """Knobs of the uniform background model."""

    total_flows: int = 200_000
    duration_hours: float = 24.0
    seed: int = 2015

    def __post_init__(self) -> None:
        if self.total_flows <= 0:
            raise ConfigurationError("total_flows must be positive")
        if self.duration_hours <= 0:
            raise ConfigurationError("duration_hours must be positive")


def generate_uniform_background(
    network: DataCenterNetwork, params: UniformBackgroundParams, *, name: str = "uniform"
) -> Trace:
    """Uniformly random pairs at uniformly random times — the locality floor."""
    host_count = _require_hosts(network)
    rng = make_rng(params.seed, "uniform-background")
    seconds = params.duration_hours * 3600.0
    flows: List[FlowRecord] = []
    for flow_id in range(params.total_flows):
        src, dst = _random_pair(rng, host_count)
        packet_count, byte_count, duration = _mice_payload(rng)
        flows.append(
            FlowRecord(
                start_time=rng.random() * seconds,
                flow_id=flow_id,
                src_host_id=src,
                dst_host_id=dst,
                packet_count=packet_count,
                byte_count=byte_count,
                duration=duration,
            )
        )
    return Trace(name, network, flows)
