"""Built-in traffic models beyond the paper's two generators.

Each model is a deterministic trace generator with a frozen params dataclass,
registered by name in :mod:`repro.traffic.registry`.  They cover the workload
shapes the paper's evaluation gestures at but never isolates:

* **elephant/mice** — a handful of heavy, long-lived host pairs (elephants)
  over a swarm of short mice flows; locality lives in the elephants, so
  grouping gains hinge on where those few pairs sit;
* **incast hotspot** — many sources fanning in on a few hot destination
  hosts (storage frontends, reducers), optionally compressed into a burst
  window to model a synchronized stampede;
* **all-to-all shuffle** — periodic waves in which a participant set
  exchanges flows pairwise (the MapReduce shuffle shape), the workload with
  the *least* exploitable pair locality;
* **uniform background** — uniformly random pairs at uniformly random
  times, the locality-free floor every other model is compared against.

Every model generates natively as a chunked
:class:`~repro.traffic.stream.FlowStream` (``stream_*`` functions): cheap
setup state (elephant pairs, hotspots, shuffle participants) is drawn once
from a dedicated setup RNG stream, and each chunk's flows come from their
own per-chunk RNG, so any chunk can be produced in O(chunk) memory without
generating its predecessors.  The ``generate_*`` functions are the
materialized wrappers (``Trace.from_stream``), so the streamed and
materialized paths are bit-identical by construction.  All RNG streams
derive from the params seed only (not the trace name), so a model's output
is a pure function of its params over a given topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.common.errors import ConfigurationError, TrafficError
from repro.common.rng import make_rng, sample_zipf_index
from repro.topology.network import DataCenterNetwork
from repro.traffic.stream import (
    ChunkWindow,
    FlowDraw,
    GeneratedStream,
    allocate_counts,
    plan_windows,
    subdivide_span,
    uniform_spans,
)
from repro.traffic.trace import Trace


def _require_hosts(network: DataCenterNetwork, minimum: int = 4) -> int:
    host_count = network.host_count()
    if host_count < minimum:
        raise TrafficError(f"the topology needs at least {minimum} hosts to generate traffic")
    return host_count


def _random_pair(rng, host_count: int) -> Tuple[int, int]:
    src = rng.randrange(host_count)
    dst = rng.randrange(host_count)
    while dst == src:
        dst = rng.randrange(host_count)
    return src, dst


def _mice_payload(rng) -> Tuple[int, int, float]:
    packet_count = max(1, int(rng.expovariate(1.0 / 8.0)) + 1)
    return packet_count, packet_count * 1400, min(30.0, packet_count * 0.05)


# -- elephant / mice ----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ElephantMiceParams:
    """Knobs of the elephant/mice model."""

    total_flows: int = 200_000
    duration_hours: float = 24.0
    elephant_pair_count: int = 32
    elephant_flow_fraction: float = 0.2
    elephant_intra_tenant_fraction: float = 0.9
    elephant_packet_mean: float = 400.0
    seed: int = 2015

    def __post_init__(self) -> None:
        if self.total_flows <= 0:
            raise ConfigurationError("total_flows must be positive")
        if self.duration_hours <= 0:
            raise ConfigurationError("duration_hours must be positive")
        if self.elephant_pair_count < 1:
            raise ConfigurationError("elephant_pair_count must be at least 1")
        if not 0.0 <= self.elephant_flow_fraction <= 1.0:
            raise ConfigurationError("elephant_flow_fraction must be in [0, 1]")
        if not 0.0 <= self.elephant_intra_tenant_fraction <= 1.0:
            raise ConfigurationError("elephant_intra_tenant_fraction must be in [0, 1]")
        if self.elephant_packet_mean <= 0:
            raise ConfigurationError("elephant_packet_mean must be positive")


def stream_elephant_mice(
    network: DataCenterNetwork, params: ElephantMiceParams, *, name: str = "elephant-mice"
) -> GeneratedStream:
    """Few heavy pairs (elephants) over many light random flows (mice), streamed."""
    host_count = _require_hosts(network)
    rng = make_rng(params.seed, "elephant-mice", "setup")

    tenants = [tenant for tenant in network.tenants.tenants() if tenant.size >= 2]
    elephants: List[Tuple[int, int]] = []
    seen = set()
    attempts = 0
    while len(elephants) < params.elephant_pair_count and attempts < params.elephant_pair_count * 50:
        attempts += 1
        if tenants and rng.random() < params.elephant_intra_tenant_fraction:
            tenant = tenants[rng.randrange(len(tenants))]
            a, b = rng.sample(tenant.host_ids, 2)
        else:
            a, b = _random_pair(rng, host_count)
        pair = (a, b) if a < b else (b, a)
        if pair not in seen:
            seen.add(pair)
            elephants.append(pair)
    if not elephants:
        raise TrafficError("no elephant pairs could be selected")

    seconds = params.duration_hours * 3600.0
    elephant_fraction = params.elephant_flow_fraction
    packet_mean = params.elephant_packet_mean

    def emit(rng, window: ChunkWindow) -> List[FlowDraw]:
        draws: List[FlowDraw] = []
        start, span = window.start, window.span
        for _ in range(window.counts[0]):
            timestamp = start + rng.random() * span
            if rng.random() < elephant_fraction:
                src, dst = elephants[rng.randrange(len(elephants))]
                if rng.random() < 0.5:
                    src, dst = dst, src
                packet_count = max(1, int(rng.expovariate(1.0 / packet_mean)) + 1)
                byte_count = packet_count * 1400
                duration = min(600.0, packet_count * 0.05)
            else:
                src, dst = _random_pair(rng, host_count)
                packet_count, byte_count, duration = _mice_payload(rng)
            draws.append((timestamp, src, dst, packet_count, byte_count, duration))
        return draws

    return GeneratedStream(
        name,
        network,
        plan_windows(uniform_spans(seconds), params.total_flows),
        emit,
        seed=params.seed,
        rng_label="elephant-mice",
        duration=seconds,
    )


def generate_elephant_mice(
    network: DataCenterNetwork, params: ElephantMiceParams, *, name: str = "elephant-mice"
) -> Trace:
    """Materialized elephant/mice trace (the streamed flows, collected)."""
    return Trace.from_stream(stream_elephant_mice(network, params, name=name))


# -- incast hotspot -----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class IncastHotspotParams:
    """Knobs of the incast-hotspot model."""

    total_flows: int = 200_000
    duration_hours: float = 24.0
    hotspot_count: int = 4
    hotspot_flow_fraction: float = 0.7
    hotspot_zipf_exponent: float = 0.8
    burst_window_hours: Tuple[float, float] | None = None
    seed: int = 2015

    def __post_init__(self) -> None:
        if self.total_flows <= 0:
            raise ConfigurationError("total_flows must be positive")
        if self.duration_hours <= 0:
            raise ConfigurationError("duration_hours must be positive")
        if self.hotspot_count < 1:
            raise ConfigurationError("hotspot_count must be at least 1")
        if not 0.0 <= self.hotspot_flow_fraction <= 1.0:
            raise ConfigurationError("hotspot_flow_fraction must be in [0, 1]")
        if self.hotspot_zipf_exponent <= 0:
            raise ConfigurationError("hotspot_zipf_exponent must be positive")
        if self.burst_window_hours is not None:
            start, end = self.burst_window_hours
            if start < 0 or end > self.duration_hours or end <= start:
                raise ConfigurationError(
                    "burst_window_hours must lie inside [0, duration_hours] with positive length"
                )
            object.__setattr__(self, "burst_window_hours", (float(start), float(end)))


def stream_incast_hotspot(
    network: DataCenterNetwork, params: IncastHotspotParams, *, name: str = "incast-hotspot"
) -> GeneratedStream:
    """Fan-in traffic onto a few hot destination hosts, streamed.

    The hotspot and background populations have different time supports
    (the burst window vs the whole day), so each chunk window carries one
    planned count per population: hotspot flows are spread across windows in
    proportion to their overlap with the burst, background flows in
    proportion to plain window length.
    """
    host_count = _require_hosts(network)
    rng = make_rng(params.seed, "incast-hotspot", "setup")

    hotspot_count = min(params.hotspot_count, host_count - 1)
    hotspots = rng.sample(range(host_count), hotspot_count)

    seconds = params.duration_hours * 3600.0
    if params.burst_window_hours is not None:
        burst_start = params.burst_window_hours[0] * 3600.0
        burst_end = params.burst_window_hours[1] * 3600.0
    else:
        burst_start, burst_end = 0.0, seconds

    hot_total = round(params.total_flows * params.hotspot_flow_fraction)
    background_total = params.total_flows - hot_total

    # Chunk the timeline region by region (before / inside / after the
    # burst), sizing each region's subdivision by the flows it actually
    # holds: a narrow burst concentrates every hot flow into a sliver of
    # the day, and a uniform grid over the whole duration would pack that
    # sliver into chunks far beyond the target size.
    region_edges = sorted({0.0, burst_start, burst_end, seconds})
    bounds: List[Tuple[float, float]] = []
    for region_start, region_end in zip(region_edges, region_edges[1:]):
        expected = background_total * (region_end - region_start) / seconds
        if burst_start <= region_start and region_end <= burst_end:
            expected += hot_total
        bounds.extend(subdivide_span(region_start, region_end, round(expected)))
    hot_weights = [max(0.0, min(end, burst_end) - max(start, burst_start)) for start, end in bounds]
    hot_counts = allocate_counts(hot_total, hot_weights)
    background_counts = allocate_counts(background_total, [end - start for start, end in bounds])
    windows = [
        ChunkWindow(index=part, start=start, end=end, counts=(hot_counts[part], background_counts[part]))
        for part, (start, end) in enumerate(bounds)
    ]

    zipf_exponent = params.hotspot_zipf_exponent

    def emit(rng, window: ChunkWindow) -> List[FlowDraw]:
        draws: List[FlowDraw] = []
        hot_count, background_count = window.counts
        overlap_start = max(window.start, burst_start)
        overlap_span = min(window.end, burst_end) - overlap_start
        for _ in range(hot_count):
            dst = hotspots[sample_zipf_index(rng, len(hotspots), zipf_exponent)]
            src = rng.randrange(host_count)
            while src == dst:
                src = rng.randrange(host_count)
            timestamp = overlap_start + rng.random() * overlap_span
            packet_count, byte_count, duration = _mice_payload(rng)
            draws.append((timestamp, src, dst, packet_count, byte_count, duration))
        start, span = window.start, window.span
        for _ in range(background_count):
            src, dst = _random_pair(rng, host_count)
            timestamp = start + rng.random() * span
            packet_count, byte_count, duration = _mice_payload(rng)
            draws.append((timestamp, src, dst, packet_count, byte_count, duration))
        return draws

    return GeneratedStream(
        name,
        network,
        windows,
        emit,
        seed=params.seed,
        rng_label="incast-hotspot",
        duration=seconds,
    )


def generate_incast_hotspot(
    network: DataCenterNetwork, params: IncastHotspotParams, *, name: str = "incast-hotspot"
) -> Trace:
    """Materialized incast-hotspot trace (the streamed flows, collected)."""
    return Trace.from_stream(stream_incast_hotspot(network, params, name=name))


# -- all-to-all shuffle -------------------------------------------------------


@dataclass(frozen=True, slots=True)
class AllToAllShuffleParams:
    """Knobs of the all-to-all shuffle model."""

    total_flows: int = 200_000
    duration_hours: float = 24.0
    phase_count: int = 4
    phase_duration_hours: float = 0.5
    participant_fraction: float = 1.0
    seed: int = 2015

    def __post_init__(self) -> None:
        if self.total_flows <= 0:
            raise ConfigurationError("total_flows must be positive")
        if self.duration_hours <= 0:
            raise ConfigurationError("duration_hours must be positive")
        if self.phase_count < 1:
            raise ConfigurationError("phase_count must be at least 1")
        if not 0 < self.phase_duration_hours <= self.duration_hours / self.phase_count:
            raise ConfigurationError(
                "phase_duration_hours must be positive and phases must fit the duration "
                "(phase_count * phase_duration_hours <= duration_hours)"
            )
        if not 0.0 < self.participant_fraction <= 1.0:
            raise ConfigurationError("participant_fraction must be in (0, 1]")


def stream_all_to_all_shuffle(
    network: DataCenterNetwork, params: AllToAllShuffleParams, *, name: str = "all-to-all-shuffle"
) -> GeneratedStream:
    """Periodic shuffle waves (participants exchange flows pairwise), streamed.

    Each phase's participant set is drawn from its own setup RNG stream so a
    phase's chunks can be generated independently; windows only cover phase
    spans (the gaps between waves hold no flows by construction).
    """
    host_count = _require_hosts(network)

    participant_count = max(2, int(round(host_count * params.participant_fraction)))
    phase_span = params.phase_duration_hours * 3600.0
    # Phases are evenly spaced across the day, each starting on its slot.
    slot = params.duration_hours * 3600.0 / params.phase_count

    per_phase = [params.total_flows // params.phase_count] * params.phase_count
    for index in range(params.total_flows % params.phase_count):
        per_phase[index] += 1

    participants_by_phase: List[Sequence[int]] = []
    for phase in range(params.phase_count):
        phase_rng = make_rng(params.seed, "all-to-all-shuffle", "phase", str(phase))
        participants_by_phase.append(
            phase_rng.sample(range(host_count), min(participant_count, host_count))
        )

    windows: List[ChunkWindow] = []
    phase_of_window: List[int] = []
    index = 0
    for phase in range(params.phase_count):
        phase_start = phase * slot
        bounds = subdivide_span(phase_start, phase_start + phase_span, per_phase[phase])
        part_counts = allocate_counts(per_phase[phase], [1.0] * len(bounds))
        for (part_start, part_end), part_count in zip(bounds, part_counts):
            windows.append(
                ChunkWindow(index=index, start=part_start, end=part_end, counts=(part_count,))
            )
            phase_of_window.append(phase)
            index += 1

    def emit(rng, window: ChunkWindow) -> List[FlowDraw]:
        participants = participants_by_phase[phase_of_window[window.index]]
        draws: List[FlowDraw] = []
        start, span = window.start, window.span
        for _ in range(window.counts[0]):
            src = participants[rng.randrange(len(participants))]
            dst = participants[rng.randrange(len(participants))]
            while dst == src:
                dst = participants[rng.randrange(len(participants))]
            timestamp = start + rng.random() * span
            packet_count, byte_count, duration = _mice_payload(rng)
            draws.append((timestamp, src, dst, packet_count, byte_count, duration))
        return draws

    return GeneratedStream(
        name,
        network,
        windows,
        emit,
        seed=params.seed,
        rng_label="all-to-all-shuffle",
        duration=params.duration_hours * 3600.0,
    )


def generate_all_to_all_shuffle(
    network: DataCenterNetwork, params: AllToAllShuffleParams, *, name: str = "all-to-all-shuffle"
) -> Trace:
    """Materialized shuffle trace (the streamed flows, collected)."""
    return Trace.from_stream(stream_all_to_all_shuffle(network, params, name=name))


# -- uniform background -------------------------------------------------------


@dataclass(frozen=True, slots=True)
class UniformBackgroundParams:
    """Knobs of the uniform background model."""

    total_flows: int = 200_000
    duration_hours: float = 24.0
    seed: int = 2015

    def __post_init__(self) -> None:
        if self.total_flows <= 0:
            raise ConfigurationError("total_flows must be positive")
        if self.duration_hours <= 0:
            raise ConfigurationError("duration_hours must be positive")


def stream_uniform_background(
    network: DataCenterNetwork, params: UniformBackgroundParams, *, name: str = "uniform"
) -> GeneratedStream:
    """Uniformly random pairs at uniformly random times, streamed."""
    host_count = _require_hosts(network)
    seconds = params.duration_hours * 3600.0

    def emit(rng, window: ChunkWindow) -> List[FlowDraw]:
        draws: List[FlowDraw] = []
        start, span = window.start, window.span
        for _ in range(window.counts[0]):
            src, dst = _random_pair(rng, host_count)
            packet_count, byte_count, duration = _mice_payload(rng)
            draws.append((start + rng.random() * span, src, dst, packet_count, byte_count, duration))
        return draws

    return GeneratedStream(
        name,
        network,
        plan_windows(uniform_spans(seconds), params.total_flows),
        emit,
        seed=params.seed,
        rng_label="uniform-background",
        duration=seconds,
    )


def generate_uniform_background(
    network: DataCenterNetwork, params: UniformBackgroundParams, *, name: str = "uniform"
) -> Trace:
    """Materialized uniform-background trace (the streamed flows, collected)."""
    return Trace.from_stream(stream_uniform_background(network, params, name=name))
