"""Composable traffic mixes: weighted, time-windowed blends of registered models.

A :class:`TrafficMixSpec` lists components, each naming a registered traffic
model with raw params, a weight (its share of the mix's ``total_flows``) and
an optional time window.  :func:`generate_mix_trace` materializes every
component over the same topology and merges the results into one
deterministic trace — e.g. a diurnal realistic baseline, an elephant/mice
overlay through business hours, and an incast burst at 9 am.

Two properties the tests pin down:

* **determinism** — the merged trace is a pure function of (topology, mix
  spec): each component's RNG seed is derived from the mix seed and a
  canonical fingerprint of the component, never from list position;
* **order independence** — because seeds ignore position and the merged
  flows are re-numbered in a canonical sort order, permuting ``components``
  yields a bit-identical trace.

The mix is itself registered as the ``"mix"`` traffic model, so it nests
anywhere a model name is accepted — scenario specs, presets, even another
mix.

Composition is natively streamed: :func:`stream_mix_trace` builds each
component's stream and performs a k-way merge over them
(:class:`~repro.traffic.stream.MergedStream`), holding each component's
current chunk plus one output chunk — O(components × chunk), independent of
trace length — instead of concatenating materialized lists.
:func:`generate_mix_trace` is the materialized wrapper.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rng import derive_seed
from repro.common.serialize import to_jsonable
from repro.topology.network import DataCenterNetwork
from repro.traffic.stream import FlowStream, MergedStream
from repro.traffic.trace import Trace


@dataclass(frozen=True, slots=True)
class TrafficComponentSpec:
    """One ingredient of a traffic mix.

    ``window_hours`` confines the component to a slice of the mix's
    timeline: the component is generated over a duration equal to the
    window's length and then shifted to start at the window's start.  A
    model with time-of-day structure therefore restarts its own clock at
    the window start — a windowed ``realistic`` component begins at its
    hour-0 diurnal weight, not at the wall-clock hour's weight.
    """

    model: str
    params: Dict[str, Any] = field(default_factory=dict)
    weight: float = 1.0
    window_hours: Optional[Tuple[float, float]] = None

    def __post_init__(self) -> None:
        if not self.model or not self.model.strip():
            raise ConfigurationError("component model must be a non-empty string")
        if self.weight <= 0:
            raise ConfigurationError("component weight must be positive")
        object.__setattr__(self, "params", dict(to_jsonable(dict(self.params))))
        if self.window_hours is not None:
            start, end = self.window_hours
            if start < 0 or end <= start:
                raise ConfigurationError(
                    "component window_hours must be non-negative with positive length"
                )
            object.__setattr__(self, "window_hours", (float(start), float(end)))

    def fingerprint(self) -> str:
        """A canonical, position-independent identity for seed derivation."""
        return json.dumps(
            {
                "model": self.model,
                "params": self.params,
                "weight": self.weight,
                "window_hours": list(self.window_hours) if self.window_hours else None,
            },
            sort_keys=True,
        )


@dataclass(frozen=True, slots=True)
class TrafficMixSpec:
    """A weighted, time-windowed composition of registered traffic models."""

    components: Tuple[TrafficComponentSpec, ...] = ()
    total_flows: int = 200_000
    duration_hours: float = 24.0
    seed: int = 2015

    def __post_init__(self) -> None:
        components = tuple(self.components)
        if not components:
            raise ConfigurationError("a traffic mix needs at least one component")
        object.__setattr__(self, "components", components)
        if self.total_flows <= 0:
            raise ConfigurationError("total_flows must be positive")
        if self.duration_hours <= 0:
            raise ConfigurationError("duration_hours must be positive")
        for component in components:
            if component.window_hours is not None and component.window_hours[1] > self.duration_hours:
                raise ConfigurationError(
                    f"component {component.model!r} window ends at "
                    f"{component.window_hours[1]} h, beyond the mix duration of "
                    f"{self.duration_hours} h"
                )


#: Per-component knobs the mix overrides when the target model supports them.
_MIX_OVERRIDE_KEYS = ("total_flows", "duration_hours", "seed")


def _component_flow_counts(mix: TrafficMixSpec) -> List[int]:
    """Split ``total_flows`` across components by weight, hitting it exactly.

    Largest-remainder allocation: floor every share, then hand the leftover
    flows to the components with the largest fractional parts.  Both the
    shares (fsum-normalized) and the tie-break (component fingerprints) are
    independent of list order, preserving the permutation invariant.

    ``repro.traffic.stream.allocate_counts`` is the same algorithm under the
    chunk grid's determinism contract (plain sum, positional tie-break);
    see its docstring before changing either.
    """
    weight_sum = math.fsum(component.weight for component in mix.components)
    shares = [
        mix.total_flows * component.weight / weight_sum for component in mix.components
    ]
    counts = [math.floor(share) for share in shares]
    leftover = mix.total_flows - sum(counts)
    by_remainder = sorted(
        range(len(shares)),
        key=lambda i: (counts[i] - shares[i], mix.components[i].fingerprint()),
    )
    for index in by_remainder[:leftover]:
        counts[index] += 1
    return counts


def stream_mix_trace(
    network: DataCenterNetwork, mix: TrafficMixSpec, *, name: str = "mix"
) -> MergedStream:
    """Compose every component stream into one k-way-merged deterministic stream.

    Flow ids are minted in canonical ``(time, endpoints, payload)`` merge
    order, and component seeds derive from content fingerprints — so the
    merged stream, like the materialized trace it replaces, is independent
    of component list order.  Flows a component emits past its window are
    clipped by the merge rather than leaking outside its slot.
    """
    from repro.traffic.registry import get_traffic_model

    flow_counts = _component_flow_counts(mix)
    parts: List[Tuple[FlowStream, float, float]] = []
    for component, flow_count in zip(mix.components, flow_counts):
        entry = get_traffic_model(component.model)
        if flow_count <= 0:
            continue
        window = component.window_hours or (0.0, mix.duration_hours)
        window_span_hours = window[1] - window[0]
        overrides = {
            "total_flows": flow_count,
            "duration_hours": window_span_hours,
            "seed": derive_seed(mix.seed, "traffic-mix", component.fingerprint()),
        }
        supported = entry.param_names()
        params = dict(component.params)
        params.update(
            {key: value for key, value in overrides.items() if key in supported}
        )
        stream = entry.build_stream(network, params, name=f"{name}:{component.model}")
        parts.append((stream, window[0] * 3600.0, window_span_hours * 3600.0))
    return MergedStream(
        name, network, parts, duration=mix.duration_hours * 3600.0
    )


def generate_mix_trace(
    network: DataCenterNetwork, mix: TrafficMixSpec, *, name: str = "mix"
) -> Trace:
    """Materialize the merged component streams into one deterministic trace.

    Raises :class:`~repro.common.errors.TrafficError` when the mix produces
    no flows (the merged stream itself enforces this, so the streamed path
    agrees).
    """
    return Trace.from_stream(stream_mix_trace(network, mix, name=name))
