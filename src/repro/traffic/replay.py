"""Trace replayer.

The paper replays its day-long trace against the prototype with a custom
trace re-player on every emulated edge switch.  Our replayer plays the same
role for the simulated system: it walks the trace in time order, presents
every flow arrival to a *flow sink* (a control-plane design under test), and
invokes periodic callbacks (grouping checks, state reports) at a fixed
interval of simulation time.

The sink protocol is intentionally tiny so the replayer works for the
baseline OpenFlow design, for LazyCtrl, and for unit-test doubles alike.

A replay can additionally be coupled to a
:class:`~repro.simulation.engine.SimulationEngine`: the replayer then
advances the engine clock in lockstep with the trace, so events queued on
the engine (workload churn, failure storms) fire in exact time order,
interleaved with flow arrivals and periodic ticks.

The replayer drains its source chunk by chunk through the
:class:`~repro.traffic.stream.FlowStream` protocol — a materialized
:class:`~repro.traffic.trace.Trace` presents itself as one resident chunk,
a generated stream as a lazy sequence of O(chunk)-sized ones — so replay
memory is bounded by the chunk size, not the trace size.  Within each chunk
the inner loop stays batched: flows between two periodic ticks are drained
in one slice with the sink's handler pre-resolved to a local, and the engine
lockstep is consulted only when an engine event is actually pending.  An
optional :class:`~repro.perf.recorder.PerfRecorder` times the stages and
counts drained chunks; the default
:data:`~repro.perf.recorder.NULL_RECORDER` makes instrumentation a
per-batch no-op.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Protocol, Sequence

from repro.obs.events import ChunkDrainedEvent, ReplayTickEvent
from repro.obs.tracer import NULL_TRACER
from repro.perf.recorder import NULL_RECORDER
from repro.traffic.flow import FlowRecord
from repro.traffic.stream import FlowStream, windowed_chunks

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.simulation.engine import SimulationEngine


class FlowSink(Protocol):
    """Anything that can accept replayed flow arrivals."""

    def handle_flow_arrival(self, flow: FlowRecord, now: float) -> object:
        """Process one flow arriving at simulation time ``now``."""
        ...


PeriodicCallback = Callable[[float], None]


@dataclass(slots=True)
class ReplayProgress:
    """Summary of one replay run."""

    flows_replayed: int = 0
    periodic_invocations: int = 0
    chunks_drained: int = 0
    start_time: float = 0.0
    end_time: float = 0.0

    @property
    def duration(self) -> float:
        """Simulated time covered by the replay."""
        return max(0.0, self.end_time - self.start_time)


class TraceReplayer:
    """Replays a flow source against a sink with periodic housekeeping callbacks.

    The source may be a materialized :class:`~repro.traffic.trace.Trace` or
    any :class:`~repro.traffic.stream.FlowStream`; both are drained through
    the same chunked path.
    """

    def __init__(
        self,
        trace: FlowStream,
        sink: FlowSink,
        *,
        periodic_interval: float = 60.0,
        periodic_callbacks: Optional[List[PeriodicCallback]] = None,
        event_engine: "SimulationEngine | None" = None,
        perf=NULL_RECORDER,
        tracer=NULL_TRACER,
        batch_handler: Optional[Callable[[Sequence[FlowRecord]], None]] = None,
    ) -> None:
        if periodic_interval <= 0:
            raise ValueError("periodic_interval must be positive")
        self._trace = trace
        self._sink = sink
        self._interval = periodic_interval
        self._callbacks: List[PeriodicCallback] = list(periodic_callbacks or [])
        self._engine = event_engine
        self._perf = perf
        self._tracer = tracer
        # Optional whole-batch fast path (the vectorized kernel).  Only used
        # without a coupled engine: engine lockstep needs per-flow draining.
        self._batch_handler = batch_handler

    def add_periodic_callback(self, callback: PeriodicCallback) -> None:
        """Register an additional housekeeping callback."""
        self._callbacks.append(callback)

    def replay(self, *, start: float = 0.0, end: Optional[float] = None) -> ReplayProgress:
        """Replay the source window ``[start, end)`` in time order.

        With ``end=None`` the window is clamped to the flows actually seen:
        every remaining flow is replayed (the last arrival inclusive) and no
        periodic tick fires past the last arrival.  For an empty source (or
        a ``start`` past the last arrival) the window collapses to the empty
        ``[start, start)``, so ``end_time`` never precedes ``start_time``.

        Periodic callbacks fire at every multiple of the configured interval
        that falls inside the window, interleaved correctly with flow
        arrivals (callbacks scheduled at time T fire before flows arriving at
        or after T).
        """
        progress = ReplayProgress(start_time=start, end_time=start)
        with self._perf.timeit("replay"):
            self._run(start, end, progress)
        return progress

    def _run(self, start: float, end: Optional[float], progress: ReplayProgress) -> None:
        interval = self._interval
        perf = self._perf
        engine = self._engine
        tracer = self._tracer
        handle = self._sink.handle_flow_arrival
        batch_handler = self._batch_handler if engine is None else None
        next_tick = start + interval
        last_arrival: Optional[float] = None

        for flows in windowed_chunks(self._trace, start=start, end=end):
            progress.chunks_drained += 1
            start_times = [flow.start_time for flow in flows]
            total = len(flows)
            index = 0
            while index < total:
                # All flows arriving strictly before the next tick form one
                # batch; the tick at time T fires before flows at or after T.
                boundary = bisect_left(start_times, next_tick, index)
                if boundary > index:
                    batch = flows[index:boundary]
                    with perf.timeit("flow_handling"):
                        if batch_handler is not None:
                            batch_handler(batch)
                        elif engine is None:
                            for flow in batch:
                                handle(flow, flow.start_time)
                        else:
                            self._drain_with_engine(batch, handle, engine, perf)
                    progress.flows_replayed += boundary - index
                    index = boundary
                if index >= total:
                    break
                # The next flow arrives at or after next_tick: fire every tick
                # scheduled up to (and including) that arrival time first.
                arrival = start_times[index]
                while next_tick <= arrival:
                    self._fire_periodic(next_tick, progress)
                    next_tick += interval
            if total:
                last_arrival = start_times[-1]
            if tracer.enabled:
                # Stamped with the chunk's last arrival: the simulation time
                # at which the chunk was fully drained.
                tracer.emit(
                    ChunkDrainedEvent(
                        time=last_arrival if last_arrival is not None else start,
                        index=progress.chunks_drained - 1,
                        flows=total,
                    )
                )

        if end is not None:
            window_end = end
        elif last_arrival is not None:
            window_end = max(start, last_arrival)
        else:
            window_end = start
        while next_tick <= window_end:
            self._fire_periodic(next_tick, progress)
            next_tick += interval
        self._advance_engine(window_end)
        progress.end_time = window_end

    @staticmethod
    def _drain_with_engine(
        batch: Sequence[FlowRecord], handle, engine: "SimulationEngine", perf
    ) -> None:
        """Replay one batch in lockstep with the coupled engine.

        The engine is consulted only while events are actually pending: once
        the queue peeks empty the loop degenerates to the plain fast path
        (the clock catches up at the next periodic tick or at window end).
        """
        next_event = engine.queue.peek_time()
        for flow in batch:
            now = flow.start_time
            if next_event is not None and next_event <= now:
                with perf.timeit("engine"):
                    engine.run_until(now)
                next_event = engine.queue.peek_time()
            handle(flow, now)

    def _fire_periodic(self, now: float, progress: ReplayProgress) -> None:
        self._advance_engine(now)
        with self._perf.timeit("periodic"):
            for callback in self._callbacks:
                callback(now)
        progress.periodic_invocations += 1
        if self._tracer.enabled:
            self._tracer.emit(
                ReplayTickEvent(time=now, index=progress.periodic_invocations - 1)
            )

    def _advance_engine(self, now: float) -> None:
        """Dispatch all coupled-engine events scheduled up to ``now``."""
        if self._engine is not None and now >= self._engine.now:
            with self._perf.timeit("engine"):
                self._engine.run_until(now)
