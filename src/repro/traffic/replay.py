"""Trace replayer.

The paper replays its day-long trace against the prototype with a custom
trace re-player on every emulated edge switch.  Our replayer plays the same
role for the simulated system: it walks the trace in time order, presents
every flow arrival to a *flow sink* (a control-plane design under test), and
invokes periodic callbacks (grouping checks, state reports) at a fixed
interval of simulation time.

The sink protocol is intentionally tiny so the replayer works for the
baseline OpenFlow design, for LazyCtrl, and for unit-test doubles alike.

A replay can additionally be coupled to a
:class:`~repro.simulation.engine.SimulationEngine`: the replayer then
advances the engine clock in lockstep with the trace, so events queued on
the engine (workload churn, failure storms) fire in exact time order,
interleaved with flow arrivals and periodic ticks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Protocol

from repro.traffic.flow import FlowRecord
from repro.traffic.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.simulation.engine import SimulationEngine


class FlowSink(Protocol):
    """Anything that can accept replayed flow arrivals."""

    def handle_flow_arrival(self, flow: FlowRecord, now: float) -> object:
        """Process one flow arriving at simulation time ``now``."""
        ...


PeriodicCallback = Callable[[float], None]


@dataclass(slots=True)
class ReplayProgress:
    """Summary of one replay run."""

    flows_replayed: int = 0
    periodic_invocations: int = 0
    start_time: float = 0.0
    end_time: float = 0.0

    @property
    def duration(self) -> float:
        """Simulated time covered by the replay."""
        return max(0.0, self.end_time - self.start_time)


class TraceReplayer:
    """Replays a trace against a flow sink with periodic housekeeping callbacks."""

    def __init__(
        self,
        trace: Trace,
        sink: FlowSink,
        *,
        periodic_interval: float = 60.0,
        periodic_callbacks: Optional[List[PeriodicCallback]] = None,
        event_engine: "SimulationEngine | None" = None,
    ) -> None:
        if periodic_interval <= 0:
            raise ValueError("periodic_interval must be positive")
        self._trace = trace
        self._sink = sink
        self._interval = periodic_interval
        self._callbacks: List[PeriodicCallback] = list(periodic_callbacks or [])
        self._engine = event_engine

    def add_periodic_callback(self, callback: PeriodicCallback) -> None:
        """Register an additional housekeeping callback."""
        self._callbacks.append(callback)

    def replay(self, *, start: float = 0.0, end: Optional[float] = None) -> ReplayProgress:
        """Replay the trace window ``[start, end)`` in time order.

        With ``end=None`` the window is clamped to the trace duration: every
        remaining flow is replayed (the last arrival inclusive) and no
        periodic tick fires past the last arrival.

        Periodic callbacks fire at every multiple of the configured interval
        that falls inside the window, interleaved correctly with flow
        arrivals (callbacks scheduled at time T fire before flows arriving at
        or after T).
        """
        if end is None:
            window_end = self._trace.duration
            # [start, duration) would exclude flows arriving exactly at the
            # trace's last timestamp, so select with an open-ended window.
            flows = self._trace.window(start, float("inf"))
        else:
            window_end = end
            flows = self._trace.window(start, end)
        progress = ReplayProgress(start_time=start, end_time=window_end)
        next_tick = start + self._interval

        for flow in flows:
            while next_tick <= flow.start_time:
                self._fire_periodic(next_tick, progress)
                next_tick += self._interval
            self._advance_engine(flow.start_time)
            self._sink.handle_flow_arrival(flow, flow.start_time)
            progress.flows_replayed += 1

        while next_tick <= window_end:
            self._fire_periodic(next_tick, progress)
            next_tick += self._interval
        self._advance_engine(window_end)
        return progress

    def _fire_periodic(self, now: float, progress: ReplayProgress) -> None:
        self._advance_engine(now)
        for callback in self._callbacks:
            callback(now)
        progress.periodic_invocations += 1

    def _advance_engine(self, now: float) -> None:
        """Dispatch all coupled-engine events scheduled up to ``now``."""
        if self._engine is not None and now >= self._engine.now:
            self._engine.run_until(now)
