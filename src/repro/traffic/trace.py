"""Trace container and trace-level statistics.

A :class:`Trace` couples a time-sorted list of :class:`FlowRecord` with the
:class:`~repro.topology.network.DataCenterNetwork` the hosts live in.  Since
the streaming refactor it is the *materialized convenience wrapper* over the
chunked pipeline: every built-in generator natively emits a
:class:`~repro.traffic.stream.FlowStream`, and :meth:`Trace.from_stream`
(or passing the stream straight to the constructor — streams are iterable)
collects the chunks into a list for callers that want random access.

The derived views the rest of the library needs —

* the switch-level intensity matrix over an arbitrary time window (input to
  the grouping algorithms and the replayer),
* pair-activity statistics (distinct communicating host pairs, share of
  flows contributed by the busiest pairs — the paper's motivation numbers),
* per-hour flow-arrival counts (the diurnal shape used by Fig. 7)

— are all computed by one accumulating
:class:`~repro.traffic.stream.TraceStatistics` pass rather than a re-scan
per view: the topology-independent views (pair activity, hourly counts,
communicating pairs) share a single cached pass, while the intensity matrix
is re-accumulated per call because it reflects host placement *now* (VM
churn moves hosts between switches mid-replay).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.common.errors import TrafficError
from repro.datastructures.intensity import IntensityMatrix
from repro.topology.network import DataCenterNetwork
from repro.traffic.flow import FlowRecord
from repro.traffic.stream import FlowStream, TraceStatistics, accumulate_intensity


@dataclass(frozen=True, slots=True)
class PairActivity:
    """Summary of how concentrated the traffic is across host pairs."""

    total_flows: int
    distinct_pairs: int
    top_decile_share: float


class Trace:
    """A named, time-sorted collection of flow records bound to a topology."""

    def __init__(self, name: str, network: DataCenterNetwork, flows: Iterable[FlowRecord]) -> None:
        self.name = name
        self.network = network
        self._flows: List[FlowRecord] = sorted(flows)
        self._start_times: List[float] = [flow.start_time for flow in self._flows]
        self._pair_stats: Optional[TraceStatistics] = None
        for flow in self._flows:
            # Fail fast on flows referencing hosts outside the topology.
            network.host(flow.src_host_id)
            network.host(flow.dst_host_id)

    @classmethod
    def from_stream(cls, stream: FlowStream, *, name: Optional[str] = None) -> "Trace":
        """Materialize a chunked flow stream into a trace."""
        return cls(name or stream.name, stream.network, stream)

    # -- basic accessors ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self) -> Iterator[FlowRecord]:
        return iter(self._flows)

    @property
    def flows(self) -> Sequence[FlowRecord]:
        """The time-sorted flow records."""
        return self._flows

    @property
    def total_flows(self) -> int:
        """Number of flow arrivals (the stream-protocol spelling)."""
        return len(self._flows)

    @property
    def duration(self) -> float:
        """Time of the last flow arrival (0 for an empty trace)."""
        return self._flows[-1].start_time if self._flows else 0.0

    def flow_count(self) -> int:
        """Number of flow arrivals in the trace."""
        return len(self._flows)

    def chunks(self) -> Iterator[Sequence[FlowRecord]]:
        """The whole trace as a single chunk (the stream protocol).

        A materialized trace is already resident, so presenting it as one
        chunk costs nothing and lets every stream consumer (the replayer
        first of all) treat traces and streams uniformly.
        """
        if self._flows:
            yield self._flows

    def window(self, start: float, end: float) -> List[FlowRecord]:
        """Flows whose arrival time falls in ``[start, end)``."""
        if end < start:
            raise TrafficError(f"invalid window [{start}, {end})")
        lo = bisect.bisect_left(self._start_times, start)
        hi = bisect.bisect_left(self._start_times, end)
        return self._flows[lo:hi]

    # -- derived statistics ---------------------------------------------------

    def _cached_pair_statistics(self) -> TraceStatistics:
        """The single shared pass behind every topology-independent view."""
        if self._pair_stats is None:
            stats = TraceStatistics(self.network, track_pairs=True, track_intensity=False)
            self._pair_stats = stats.observe_all(self._flows)
        return self._pair_stats

    def statistics(self, *, track_pairs: bool = True) -> TraceStatistics:
        """Accumulate every derived view (intensity included) in one fresh pass."""
        stats = TraceStatistics(self.network, track_pairs=track_pairs)
        return stats.observe_all(self._flows)

    def pair_activity(self) -> PairActivity:
        """Distinct communicating pairs and the share of the busiest 10 % of pairs."""
        return self._cached_pair_statistics().pair_activity()

    def switch_intensity(self, *, start: float = 0.0, end: Optional[float] = None) -> IntensityMatrix:
        """Build the switch-level intensity matrix for a time window.

        Every flow contributes one unit of intensity between the switches of
        its two endpoints; same-switch flows only register the switch.  The
        matrix is what SGI partitions and what Fig. 6 is computed from.

        ``end=None`` means the window is inclusive of the trace's last
        arrival: a flow arriving exactly at ``duration`` is counted once.
        An explicit ``end`` keeps the usual half-open ``[start, end)``
        semantics.  The matrix reflects host placement at call time, so it
        is accumulated fresh per call rather than cached.
        """
        window_end = float("inf") if end is None else end
        return accumulate_intensity(self.network, self.window(start, window_end))

    def hourly_flow_counts(self, *, hours: int = 24) -> List[int]:
        """Flow arrivals per hour over the first ``hours`` hours."""
        return self._cached_pair_statistics().hourly_flow_counts(hours=hours)

    def communicating_pairs(self) -> set[tuple[int, int]]:
        """The set of unordered host pairs that exchanged at least one flow."""
        return self._cached_pair_statistics().communicating_pairs()

    def subtrace(self, *, start: float, end: float, name: Optional[str] = None) -> "Trace":
        """A new trace restricted to flows arriving in ``[start, end)``."""
        return Trace(name or f"{self.name}[{start:.0f},{end:.0f})", self.network, self.window(start, end))

    def merged_with(self, other: "Trace", *, name: Optional[str] = None) -> "Trace":
        """Merge two traces defined over the same topology.

        The topologies may be distinct objects as long as they are
        structurally equal (same switches, host placement and tenancy) —
        rebuilding a network from the same spec yields an equal topology,
        and traces over it merge fine.  Genuinely different topologies are
        still rejected.
        """
        if other.network is not self.network and not self.network.structurally_equal(other.network):
            raise TrafficError("cannot merge traces defined over different topologies")
        return Trace(name or f"{self.name}+{other.name}", self.network, list(self._flows) + list(other.flows))
