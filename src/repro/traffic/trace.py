"""Trace container and trace-level statistics.

A :class:`Trace` couples a time-sorted list of :class:`FlowRecord` with the
:class:`~repro.topology.network.DataCenterNetwork` the hosts live in, and
provides the derived views the rest of the library needs:

* the switch-level intensity matrix over an arbitrary time window (input to
  the grouping algorithms and the replayer),
* pair-activity statistics (distinct communicating host pairs, share of
  flows contributed by the busiest pairs — the paper's motivation numbers),
* per-hour flow-arrival counts (the diurnal shape used by Fig. 7).
"""

from __future__ import annotations

import bisect
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.common.errors import TrafficError
from repro.datastructures.intensity import IntensityMatrix
from repro.topology.network import DataCenterNetwork
from repro.traffic.flow import FlowRecord


@dataclass(frozen=True, slots=True)
class PairActivity:
    """Summary of how concentrated the traffic is across host pairs."""

    total_flows: int
    distinct_pairs: int
    top_decile_share: float


class Trace:
    """A named, time-sorted collection of flow records bound to a topology."""

    def __init__(self, name: str, network: DataCenterNetwork, flows: Iterable[FlowRecord]) -> None:
        self.name = name
        self.network = network
        self._flows: List[FlowRecord] = sorted(flows)
        self._start_times: List[float] = [flow.start_time for flow in self._flows]
        for flow in self._flows:
            # Fail fast on flows referencing hosts outside the topology.
            network.host(flow.src_host_id)
            network.host(flow.dst_host_id)

    # -- basic accessors ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self) -> Iterator[FlowRecord]:
        return iter(self._flows)

    @property
    def flows(self) -> Sequence[FlowRecord]:
        """The time-sorted flow records."""
        return self._flows

    @property
    def duration(self) -> float:
        """Time of the last flow arrival (0 for an empty trace)."""
        return self._flows[-1].start_time if self._flows else 0.0

    def flow_count(self) -> int:
        """Number of flow arrivals in the trace."""
        return len(self._flows)

    def window(self, start: float, end: float) -> List[FlowRecord]:
        """Flows whose arrival time falls in ``[start, end)``."""
        if end < start:
            raise TrafficError(f"invalid window [{start}, {end})")
        lo = bisect.bisect_left(self._start_times, start)
        hi = bisect.bisect_left(self._start_times, end)
        return self._flows[lo:hi]

    # -- derived statistics ---------------------------------------------------

    def pair_activity(self) -> PairActivity:
        """Distinct communicating pairs and the share of the busiest 10 % of pairs."""
        counts = Counter(flow.unordered_pair for flow in self._flows)
        if not counts:
            return PairActivity(total_flows=0, distinct_pairs=0, top_decile_share=0.0)
        total = sum(counts.values())
        ranked = sorted(counts.values(), reverse=True)
        top_count = max(1, len(ranked) // 10)
        top_share = sum(ranked[:top_count]) / total
        return PairActivity(total_flows=total, distinct_pairs=len(counts), top_decile_share=top_share)

    def switch_intensity(self, *, start: float = 0.0, end: Optional[float] = None) -> IntensityMatrix:
        """Build the switch-level intensity matrix for a time window.

        Every flow contributes one unit of intensity between the switches of
        its two endpoints; same-switch flows only register the switch.  The
        matrix is what SGI partitions and what Fig. 6 is computed from.
        """
        matrix = IntensityMatrix(self.network.switch_ids())
        window_end = end if end is not None else self.duration + 1.0
        for flow in self.window(start, window_end):
            src_switch, dst_switch = self.network.switch_pair_of_hosts(flow.src_host_id, flow.dst_host_id)
            matrix.record(src_switch, dst_switch, 1.0)
        return matrix

    def hourly_flow_counts(self, *, hours: int = 24) -> List[int]:
        """Flow arrivals per hour over the first ``hours`` hours."""
        counts = [0] * hours
        for flow in self._flows:
            hour = int(flow.start_time // 3600)
            if 0 <= hour < hours:
                counts[hour] += 1
        return counts

    def communicating_pairs(self) -> set[tuple[int, int]]:
        """The set of unordered host pairs that exchanged at least one flow."""
        return {flow.unordered_pair for flow in self._flows}

    def subtrace(self, *, start: float, end: float, name: Optional[str] = None) -> "Trace":
        """A new trace restricted to flows arriving in ``[start, end)``."""
        return Trace(name or f"{self.name}[{start:.0f},{end:.0f})", self.network, self.window(start, end))

    def merged_with(self, other: "Trace", *, name: Optional[str] = None) -> "Trace":
        """Merge two traces defined over the same topology."""
        if other.network is not self.network:
            raise TrafficError("cannot merge traces defined over different topologies")
        return Trace(name or f"{self.name}+{other.name}", self.network, list(self._flows) + list(other.flows))
