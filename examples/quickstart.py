#!/usr/bin/env python3
"""Quickstart: reproduce the LazyCtrl headline result in under a minute.

Builds a small multi-tenant data center, generates a day-long skewed traffic
trace, and replays it against the baseline OpenFlow controller and LazyCtrl
(static and dynamic grouping).  Prints the controller-workload comparison and
the latency improvement — the paper's Fig. 7 / Fig. 9 story at laptop scale.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import quickstart
from repro.analysis.reports import format_percent, format_table, two_hour_bucket_labels


def main() -> None:
    print("Building the data center, generating the trace and replaying it "
          "against OpenFlow and LazyCtrl...\n")
    result = quickstart(switch_count=48, host_count=600, total_flows=20_000, seed=2015)

    labels = list(result.runs)
    buckets = two_hour_bucket_labels(2.0, 12)
    rows = []
    for index, bucket in enumerate(buckets):
        row = [bucket]
        for label in labels:
            krps = result.runs[label].workload.krps
            row.append(f"{krps[index] * 1000:.1f}" if index < len(krps) else "-")
        rows.append(row)
    print(format_table(["Hour"] + [f"{label} (rps)" for label in labels], rows,
                       title="Controller workload per 2-hour bucket"))

    print()
    rows = []
    for label in labels:
        run = result.runs[label]
        reduction = result.reduction("OpenFlow", label) if label != "OpenFlow" else 0.0
        rows.append([
            label,
            run.total_controller_requests,
            format_percent(reduction) if label != "OpenFlow" else "-",
            f"{run.latency.overall_mean_ms:.3f}",
            f"{sum(run.updates_per_hour):.0f}",
        ])
    print(format_table(
        ["Configuration", "Controller requests", "Workload reduction", "Mean latency (ms)", "Grouping updates"],
        rows,
        title="Summary (paper reports 61-82% workload reduction and ~10% latency reduction)",
    ))


if __name__ == "__main__":
    main()
