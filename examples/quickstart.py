#!/usr/bin/env python3
"""Quickstart: reproduce the LazyCtrl headline result in under a minute.

Declares the paper's Fig. 7/8/9 experiment as a ``ScenarioSpec`` (the
``paper-fig7`` preset), runs it through the ``ScenarioRunner``, and prints
the controller-workload comparison and the latency improvement — the paper's
story at laptop scale.

Run with::

    python examples/quickstart.py

The same experiment from the command line::

    python -m repro run paper-fig7
"""

from __future__ import annotations

from repro import ScenarioRunner, get_preset
from repro.analysis.reports import format_percent, format_table, two_hour_bucket_labels


def main() -> None:
    spec = get_preset("paper-fig7").specs()[0]
    switches, hosts = spec.topology.dimensions()
    print(f"Running scenario '{spec.name}': {switches} switches, "
          f"{hosts} hosts, {spec.traffic.total_flows} flows, "
          f"systems {', '.join(spec.systems)}...\n")
    result = ScenarioRunner().run(spec)

    baseline = spec.systems[0]
    buckets = two_hour_bucket_labels(spec.schedule.bucket_hours, 12)
    rows = []
    for index, bucket in enumerate(buckets):
        row = [bucket]
        for run in result.runs.values():
            krps = run.workload.krps
            row.append(f"{krps[index] * 1000:.1f}" if index < len(krps) else "-")
        rows.append(row)
    print(format_table(["Hour"] + [f"{label} (rps)" for label in result.labels()], rows,
                       title="Controller workload per 2-hour bucket"))

    print()
    rows = []
    for name, run in result.runs.items():
        reduction = result.reduction(baseline, name) if name != baseline else 0.0
        rows.append([
            run.label,
            run.total_controller_requests,
            format_percent(reduction) if name != baseline else "-",
            f"{run.latency.overall_mean_ms:.3f}",
            f"{sum(run.updates_per_hour):.0f}",
        ])
    print(format_table(
        ["Configuration", "Controller requests", "Workload reduction", "Mean latency (ms)", "Grouping updates"],
        rows,
        title="Summary (paper reports 61-82% workload reduction and ~10% latency reduction)",
    ))


if __name__ == "__main__":
    main()
