#!/usr/bin/env python3
"""Finite flow tables under pressure: policy sweep and capacity sweep.

Real switches hold a few thousand TCAM entries, and what happens when rules
age or space runs out is pure control-plane load: every rule removed too
early comes back as a ``Packet_In`` re-install. This example puts both
systems under the same table pressure and shows two things:

1. a **policy sweep** at a fixed tight capacity — how static idle/hard
   timeouts, pure LRU eviction, and the adaptive inter-arrival predictor
   trade table occupancy against re-install load;
2. a **capacity sweep** under one policy — how the reactive baseline
   (a rule per flow) degrades as tables shrink while LazyCtrl's tables,
   which hold only inter-group fine-grained rules, barely notice.

Run with::

    python examples/table_pressure_sweep.py
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.common.config import GroupingConfig, LazyCtrlConfig
from repro.core.runner import ScenarioRunner
from repro.core.scenario import ScenarioSpec, ScheduleSpec, TraceSpec
from repro.tables.spec import TableSpec
from repro.topology.builder import TopologyProfile

SWITCHES, HOSTS, FLOWS, SEED = 16, 200, 30_000, 7

POLICIES = [
    TableSpec(capacity=8, policy="static-idle", idle_timeout_seconds=1800.0),
    TableSpec(capacity=8, policy="idle-hard-hybrid",
              idle_timeout_seconds=1800.0, hard_timeout_seconds=7200.0),
    TableSpec(capacity=8, policy="lru"),
    TableSpec(capacity=8, policy="adaptive", idle_timeout_seconds=1800.0,
              params={"min_timeout_seconds": 60.0, "max_timeout_seconds": 3600.0}),
]


def spec_with(tables: TableSpec, name: str) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        topology=TopologyProfile(switch_count=SWITCHES, host_count=HOSTS, seed=SEED),
        traffic=TraceSpec.realistic(total_flows=FLOWS, seed=SEED),
        systems=("openflow", "lazyctrl-dynamic"),
        schedule=ScheduleSpec(duration_hours=24.0, bucket_hours=2.0),
        config=LazyCtrlConfig(grouping=GroupingConfig(group_size_limit=4, random_seed=SEED)),
        tables=tables,
    )


def main() -> None:
    runner = ScenarioRunner()

    # --- policy sweep at a fixed tight capacity ------------------------------
    rows = []
    for tables in POLICIES:
        result = runner.run(spec_with(tables, f"sweep-{tables.policy}"))
        for system in ("openflow", "lazyctrl-dynamic"):
            usage = result.runs[system].tables
            rows.append([
                tables.policy,
                system,
                result.runs[system].counters.controller_requests,
                usage.overflows,
                usage.reinstalls,
                usage.idle_timeouts + usage.hard_timeouts,
                usage.peak_occupancy,
            ])
    print(format_table(
        ["policy", "system", "ctrl requests", "overflows", "re-installs",
         "timeouts", "peak occ"],
        rows,
        title=f"Timeout/eviction policies at capacity 8 ({FLOWS:,} flows)",
    ))
    print()

    # --- capacity sweep with timeouts disabled (eviction pressure only) ------
    rows = []
    for capacity in (4, 8, 16):
        result = runner.run(spec_with(
            TableSpec(capacity=capacity, policy="lru"), f"capacity-{capacity}"
        ))
        openflow = result.runs["openflow"].tables
        lazyctrl = result.runs["lazyctrl-dynamic"].tables
        rows.append([
            capacity,
            openflow.reinstalls,
            lazyctrl.reinstalls,
            openflow.overflows,
            lazyctrl.overflows,
        ])
    print(format_table(
        ["capacity", "OF re-installs", "LC re-installs", "OF overflows", "LC overflows"],
        rows,
        title="Re-install load vs table capacity (lru: eviction is the only removal)",
    ))
    print()
    print("LazyCtrl's edge tables hold only inter-group fine-grained rules, so")
    print("the same capacity that thrashes the reactive baseline stays quiet.")


if __name__ == "__main__":
    main()
