#!/usr/bin/env python3
"""A multi-tenant cloud scenario: VM migration, ARP handling and state dissemination.

Walks through the day-2 operations the paper's architecture is designed for:

1. provision a LazyCtrl deployment over a multi-tenant data center;
2. show how an intra-group flow is forwarded entirely in the data plane
   (L-FIB / G-FIB) while an inter-group flow costs one controller round trip;
3. migrate a virtual machine across groups and show the state dissemination
   (peer links, state link, C-LIB update) that keeps forwarding correct;
4. print the control-plane message accounting.

Run with::

    python examples/multi_tenant_datacenter.py
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.common.config import GroupingConfig, LazyCtrlConfig
from repro.core.system import LazyCtrlSystem
from repro.topology.builder import TopologyProfile, build_multi_tenant_datacenter
from repro.traffic.flow import FlowRecord
from repro.traffic.realistic import RealisticTraceGenerator, RealisticTraceProfile


def describe(result) -> str:
    return (f"path={result.path.value}, controller involved={result.controller_involved}, "
            f"first packet {result.first_packet_latency_ms:.2f} ms")


def main() -> None:
    network = build_multi_tenant_datacenter(
        TopologyProfile(switch_count=24, host_count=360, seed=11, home_switches_per_tenant=2)
    )
    trace = RealisticTraceGenerator(
        network, RealisticTraceProfile(total_flows=10_000, seed=11)
    ).generate(name="ops-demo")

    config = LazyCtrlConfig(grouping=GroupingConfig(group_size_limit=4, random_seed=11))
    system = LazyCtrlSystem(network, config=config, dynamic_grouping=True)
    grouping = system.install_initial_grouping(trace, warmup_end=3600.0)

    print(f"Data center: {network.describe()}")
    print(f"Grouping: {grouping.group_count()} local control groups, sizes {grouping.sizes()}\n")

    group_of = system.controller.group_assignment()
    hosts = network.hosts()

    # An intra-group flow: handled by the G-FIB without the controller.
    src = hosts[0]
    dst = next(
        h for h in hosts
        if h.switch_id != src.switch_id and group_of[h.switch_id] == group_of[src.switch_id]
    )
    result = system.handle_flow_arrival(
        FlowRecord(start_time=10.0, flow_id=1, src_host_id=src.host_id, dst_host_id=dst.host_id), now=10.0
    )
    print(f"Intra-group flow  {src.mac} -> {dst.mac}: {describe(result)}")

    # An inter-group flow: the controller installs an encapsulation rule.
    remote = next(h for h in hosts if group_of[h.switch_id] != group_of[src.switch_id])
    result = system.handle_flow_arrival(
        FlowRecord(start_time=11.0, flow_id=2, src_host_id=src.host_id, dst_host_id=remote.host_id), now=11.0
    )
    print(f"Inter-group flow  {src.mac} -> {remote.mac}: {describe(result)}")

    # Repeat of the same inter-group flow: hits the installed rule.
    result = system.handle_flow_arrival(
        FlowRecord(start_time=12.0, flow_id=3, src_host_id=src.host_id, dst_host_id=remote.host_id), now=12.0
    )
    print(f"Repeat of that flow: {describe(result)}\n")

    # Migrate the destination VM into the source's group and show that the
    # traffic becomes intra-group (invisible to the controller).
    target_switch = next(
        sid for sid in network.switch_ids()
        if group_of[sid] == group_of[src.switch_id] and sid != src.switch_id
    )
    print(f"Migrating VM {remote.mac} from switch {remote.switch_id} to switch {target_switch}...")
    system.disseminator.migrate_host(remote.host_id, target_switch)
    requests_before = system.controller.total_requests
    result = system.handle_flow_arrival(
        FlowRecord(start_time=20.0, flow_id=4, src_host_id=src.host_id, dst_host_id=remote.host_id), now=20.0
    )
    print(f"Same flow after migration: {describe(result)} "
          f"(controller requests unchanged: {system.controller.total_requests == requests_before})\n")

    stats = system.disseminator.stats
    print(format_table(
        ["Metric", "Value"],
        [
            ["Live dissemination events", stats.live_events],
            ["VM migrations", stats.migration_events],
            ["Peer-link messages", stats.peer_messages],
            ["State reports to controller", stats.state_reports],
            ["C-LIB entries updated", stats.controller_updates],
            ["Controller requests so far", system.controller.total_requests],
            ["Flow rules installed by controller", system.controller.flow_mods_sent],
        ],
        title="Control-plane accounting",
    ))


if __name__ == "__main__":
    main()
