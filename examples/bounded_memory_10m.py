"""Replay a multi-million-flow day in bounded memory with the streaming pipeline.

The materialized path allocates every ``FlowRecord`` up front — gigabytes at
10 M flows — while the streaming path generates and drains the trace chunk
by chunk, so peak memory stays flat regardless of trace length.  This script
runs the ``paper-fig7-10m`` preset (scaled down by default so it finishes in
seconds; pass ``--flows 10000000`` for the real thing) and reports the
replay outcome next to the process's peak resident memory.

Run from the repository root::

    python examples/bounded_memory_10m.py                      # 1M flows, ~30 s
    python examples/bounded_memory_10m.py --flows 10000000     # the full 10M smoke
"""

from __future__ import annotations

import argparse
import dataclasses
import time

from repro.core.presets import get_preset
from repro.core.runner import ScenarioRunner
from repro.perf.recorder import peak_rss_bytes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--flows",
        type=int,
        default=1_000_000,
        help="trace length (default 1M; the committed CI smoke uses 10M)",
    )
    args = parser.parse_args()

    (spec,) = get_preset("paper-fig7-10m").specs()
    spec = dataclasses.replace(spec, traffic=spec.traffic.with_params(total_flows=args.flows))
    assert spec.stream, "the preset selects the chunked streaming path"

    print(f"streaming {args.flows:,} flows through {spec.systems[0]} ...")
    started = time.perf_counter()
    result = ScenarioRunner().run(spec)
    elapsed = time.perf_counter() - started

    run = result.runs[spec.systems[0]]
    print(f"  replayed flows        : {run.counters.flows_handled:,}")
    print(f"  controller requests   : {run.total_controller_requests:,}")
    print(f"  grouping updates      : {sum(run.updates_per_hour):.0f}")
    print(f"  wall clock            : {elapsed:,.1f} s "
          f"({run.counters.flows_handled / elapsed:,.0f} flows/s)")
    print(f"  peak resident memory  : {peak_rss_bytes() / 1e6:,.0f} MB")
    print()
    print("A materialized run of the same length would hold every FlowRecord")
    print("in memory at once (roughly 200+ bytes per flow before replay even")
    print("starts); the streamed replay's footprint is bounded by one chunk.")


if __name__ == "__main__":
    main()
