"""Shard a 100M-flow replay across a worker pool behind one ExecutionSpec.

The ``paper-fig7-100m`` preset replays the Fig. 7 workload at 100 M flows by
splitting the 24 h timeline into bucket-aligned windows and replaying each
window in its own pooled worker against fresh per-shard state; the merged
``RunResult`` is deterministic — identical for any worker count.  This
script runs that preset (scaled down by default so it finishes in seconds;
pass ``--flows 100000000`` for the real thing) and reports the merged
outcome next to the shard telemetry: per-window walls, the critical path,
and the parallel throughput (total flows over the longest window).

Run from the repository root::

    python examples/sharded_replay_100m.py                       # 1M flows, seconds
    python examples/sharded_replay_100m.py --workers 8 --shards 8
    python examples/sharded_replay_100m.py --flows 100000000     # the full 100M replay
"""

from __future__ import annotations

import argparse
import dataclasses
import time

from repro.core.presets import get_preset
from repro.core.runner import ScenarioRunner
from repro.perf.recorder import peak_rss_bytes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--flows",
        type=int,
        default=1_000_000,
        help="trace length (default 1M; the committed baseline uses 100M)",
    )
    parser.add_argument("--workers", type=int, default=None, help="pool size (preset: 4)")
    parser.add_argument("--shards", type=int, default=None, help="time windows (preset: 12)")
    args = parser.parse_args()

    (spec,) = get_preset("paper-fig7-100m").specs()
    spec = dataclasses.replace(spec, traffic=spec.traffic.with_params(total_flows=args.flows))
    execution = spec.execution
    if args.workers is not None:
        execution = dataclasses.replace(execution, workers=args.workers)
    if args.shards is not None:
        execution = dataclasses.replace(execution, shard_count=args.shards)
    spec = dataclasses.replace(spec, execution=execution)
    assert spec.execution.stream, "each window streams its chunks in bounded memory"

    print(
        f"replaying {args.flows:,} flows through {spec.systems[0]} "
        f"({execution.shard_count or execution.workers} windows, "
        f"{execution.workers} workers) ..."
    )
    started = time.perf_counter()
    result = ScenarioRunner().run(spec)
    elapsed = time.perf_counter() - started

    run = result.runs[spec.systems[0]]
    print(f"  replayed flows        : {run.counters.flows_handled:,}")
    print(f"  controller requests   : {run.total_controller_requests:,}")
    print(f"  wall clock            : {elapsed:,.1f} s")
    print(f"  peak resident memory  : {peak_rss_bytes() / 1e6:,.0f} MB")

    telemetry = result.shards
    if telemetry is not None:
        walls = telemetry["shard_walls_seconds"][spec.systems[0]]
        critical = telemetry["critical_path_seconds"]
        print(f"  windows               : {len(walls)} "
              f"(walls {min(walls):,.1f}–{max(walls):,.1f} s)")
        print(f"  critical path         : {critical:,.1f} s")
        print(f"  parallel throughput   : {run.counters.flows_handled / critical:,.0f} flows/s "
              "(flows over the longest window)")
    else:
        print("  (single shard — the runner took the serial path, no pool)")
    print()
    print("The merged result is deterministic: rerun with --workers 1 and the")
    print("serialized RunResult comes out byte-identical.")


if __name__ == "__main__":
    main()
