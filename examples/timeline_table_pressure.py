#!/usr/bin/env python3
"""Watch an eviction storm unfold: per-bucket timelines under table pressure.

Scalar counters tell you *how many* re-installs a finite flow table caused;
the timeline tells you *when*.  This example replays a scaled-down version of
the ``table-pressure`` preset with the metrics timeline enabled and renders
per-bucket sparklines for both systems — the reactive baseline's eviction
storm shows up as a sustained band of evictions and re-installs, while
LazyCtrl's smaller edge tables stay quiet.

It also demonstrates the exactness contract the timeline ships with: every
per-bucket series sums to the matching scalar counter, so the timeline is an
exact decomposition of the run, not a sampled approximation.

Run with::

    python examples/timeline_table_pressure.py
"""

from __future__ import annotations

import dataclasses

from repro.core.presets import get_preset
from repro.core.runner import ScenarioRunner
from repro.obs.timeline import render_timeline
from repro.obs.tracer import TraceOptions

FLOWS, DURATION_HOURS = 60_000, 12.0


def main() -> None:
    spec = get_preset("table-pressure").specs()[0]
    spec = dataclasses.replace(
        spec,
        traffic=spec.traffic.with_params(total_flows=FLOWS),
        schedule=dataclasses.replace(spec.schedule, duration_hours=DURATION_HOURS),
    )

    result = ScenarioRunner().run(spec, obs=TraceOptions(timeline=True))

    for run in result.runs.values():
        print(render_timeline(run.timeline, label=f"{spec.name} · {run.label}"))
        print()

    # The timeline is exact: each series sums to the scalar counter the rest
    # of the toolchain reports.  Show the contract holding for the noisiest
    # counters of the noisiest system.
    run = result.runs["openflow"]
    timeline, tables = run.timeline, run.tables
    print("Exactness check (openflow):")
    for series, scalar in [
        ("flows", run.counters.flows_handled),
        ("packet_ins", run.total_controller_requests),
        ("flow_installs", tables.installs),
        ("timeouts", tables.idle_timeouts + tables.hard_timeouts),
        ("reinstalls", tables.reinstalls),
    ]:
        total = timeline.total(series)
        marker = "ok" if total == scalar else "MISMATCH"
        print(f"  sum({series}) = {total:>9,}  scalar = {scalar:>9,}  [{marker}]")
        assert total == scalar


if __name__ == "__main__":
    main()
