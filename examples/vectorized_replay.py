"""Race the scalar replayer against the vectorized columnar kernel.

The kernel (``repro.kernel``) transposes each replay batch into numpy
arrays, groups flows by (source, destination) pair, and classifies whole
pairs against live switch state — alive flow-table rules, local deliveries,
intra-group G-FIB answers — folding counters, latencies and timelines in
bulk.  Whatever the arrays cannot decide replays through the unchanged
scalar path, so the results are *bit-identical*; only the wall-clock moves.

This script replays the Fig. 7 scenario twice — ``kernel=scalar`` then
``kernel=vectorized`` — asserts the serialized results are equal, and
prints the speedup next to the kernel's own telemetry (array-path coverage
and flows that fell back).

Run from the repository root::

    python examples/vectorized_replay.py                 # 20k flows, seconds
    python examples/vectorized_replay.py --flows 500000  # the benchmarked scale
"""

from __future__ import annotations

import argparse
import dataclasses
import time

from repro.core.presets import get_preset
from repro.core.runner import ScenarioRunner
from repro.replay.spec import ExecutionSpec


def replay(spec, kernel: str):
    spec = dataclasses.replace(spec, execution=ExecutionSpec(kernel=kernel))
    started = time.perf_counter()
    result = ScenarioRunner().run(spec, collect_perf=True)
    return result, time.perf_counter() - started


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--flows",
        type=int,
        default=20_000,
        help="trace length per system (default 20k; the committed baseline uses 500k)",
    )
    args = parser.parse_args()

    (spec,) = get_preset("paper-fig7").specs()
    spec = dataclasses.replace(spec, traffic=spec.traffic.with_params(total_flows=args.flows))

    print(f"replaying {args.flows:,} flows x {len(spec.systems)} systems, both kernels ...")
    scalar_result, scalar_wall = replay(spec, "scalar")
    vector_result, vector_wall = replay(spec, "vectorized")

    # The contract this example exists to demonstrate: swapping the kernel
    # changes nothing observable — counters, timelines, latencies, all of it.
    # (The perf snapshot is host-measured wall time, not a result surface.)
    def results_only(result):
        runs = result.to_dict()["runs"]
        for run in runs.values():
            run.pop("perf", None)
        return runs

    assert results_only(scalar_result) == results_only(vector_result)

    print(f"  scalar     : {scalar_wall:,.2f} s")
    print(f"  vectorized : {vector_wall:,.2f} s  ({scalar_wall / vector_wall:,.1f}x)")
    print()
    for name, run in vector_result.runs.items():
        counters = run.perf.counters
        vectorized = counters.get("kernel.flows_vectorized", 0)
        fallback = counters.get("kernel.flows_fallback", 0)
        total = vectorized + fallback
        coverage = vectorized / total if total else 0.0
        print(
            f"  {name:<18} coverage {coverage:6.1%}  "
            f"({vectorized:,} on the array path, {fallback:,} scalar fallbacks)"
        )
        assert total == run.counters.flows_handled

    print()
    print("Results are bit-identical; the kernel is an optimization layer,")
    print("not a second semantics.  OpenFlow covers least because its")
    print("packet-in/install round trips are genuine controller work.")


if __name__ == "__main__":
    main()
