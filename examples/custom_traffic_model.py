"""Registering a third-party traffic model and running it by name.

The workload registries make trace generators pluggable the same way control
planes are: define a frozen params dataclass, register a factory under a
name, and reference that name from any :class:`repro.TraceSpec` — including
inside a ``"mix"`` component, and from plain JSON spec files, since specs
carry only the model *name* plus a params dict.

Exposing ``total_flows`` / ``duration_hours`` / ``seed`` in the params is
what makes the model composable: the mix model rescales exactly those knobs
when splitting its flow budget across components.

Run with::

    PYTHONPATH=src python examples/custom_traffic_model.py
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import ScenarioRunner, ScenarioSpec, TopologySpec, TraceSpec, register_traffic_model
from repro.common.rng import make_rng
from repro.core.presets import default_grouping_config
from repro.traffic.flow import FlowRecord
from repro.traffic.mix import TrafficComponentSpec, TrafficMixSpec
from repro.traffic.trace import Trace


@dataclass(frozen=True)
class RingShiftParams:
    """Every host talks to its k-th neighbour in host-id order."""

    total_flows: int = 5_000
    duration_hours: float = 24.0
    shift: int = 1
    seed: int = 7


@register_traffic_model(
    "ring-shift",
    params=RingShiftParams,
    label="Ring shift",
    description="host i -> host (i + shift) mod n, uniform arrival times",
)
def build_ring_shift(network, params, *, name="ring-shift"):
    rng = make_rng(params.seed, "ring-shift")
    host_count = network.host_count()
    seconds = params.duration_hours * 3600.0
    flows = []
    for flow_id in range(params.total_flows):
        src = rng.randrange(host_count)
        dst = (src + params.shift) % host_count
        if dst == src:  # shift == 0 or single host
            dst = (src + 1) % host_count
        flows.append(
            FlowRecord(
                start_time=rng.random() * seconds,
                flow_id=flow_id,
                src_host_id=src,
                dst_host_id=dst,
            )
        )
    return Trace(name, network, flows)


def main() -> None:
    # The registered name works standalone...
    solo = ScenarioSpec(
        name="ring-shift-solo",
        topology=TopologySpec(
            shape="multi-tenant", params={"switch_count": 16, "host_count": 200, "seed": 7}
        ),
        traffic=TraceSpec(model="ring-shift", params={"total_flows": 4_000, "shift": 3}),
        systems=("openflow", "lazyctrl-dynamic"),
        config=default_grouping_config(16, seed=7),
    )
    # ...and as a mix component next to the built-ins.
    mixed = ScenarioSpec(
        name="ring-shift-mixed",
        topology=solo.topology,
        traffic=TraceSpec.mix(
            TrafficMixSpec(
                components=(
                    TrafficComponentSpec(model="realistic", weight=0.7),
                    TrafficComponentSpec(model="ring-shift", params={"shift": 3}, weight=0.3),
                ),
                total_flows=4_000,
            )
        ),
        systems=("openflow", "lazyctrl-dynamic"),
        config=default_grouping_config(16, seed=7),
    )
    for spec in (solo, mixed):
        result = ScenarioRunner().run(spec)
        reduction = result.reduction("openflow", "lazyctrl-dynamic")
        print(f"{spec.name}: LazyCtrl reduces controller workload by {reduction:.1%}")


if __name__ == "__main__":
    main()
