#!/usr/bin/env python3
"""Switch grouping with SGI: initial grouping quality and incremental updates.

Demonstrates the grouping subsystem in isolation (the paper's Fig. 6 story):

1. build a multi-tenant data center and a skewed trace;
2. run ``IniGroup`` (size-constrained multi-level k-way partitioning) for a
   range of group counts and report the normalized inter-group intensity;
3. shift the traffic pattern and show how ``IncUpdate`` (merge + minimum
   re-bisection) repairs the grouping at a fraction of the cost of a full
   regroup.

Run with::

    python examples/switch_grouping.py
"""

from __future__ import annotations

import time

from repro.analysis.reports import format_percent, format_table
from repro.common.config import GroupingConfig
from repro.datastructures.intensity import IntensityMatrix
from repro.partitioning.sgi import SgiGrouper, grouping_quality
from repro.topology.builder import TopologyProfile, build_multi_tenant_datacenter
from repro.traffic.realistic import RealisticTraceGenerator, RealisticTraceProfile


def main() -> None:
    network = build_multi_tenant_datacenter(
        TopologyProfile(switch_count=60, host_count=900, seed=7, home_switches_per_tenant=3)
    )
    trace = RealisticTraceGenerator(
        network, RealisticTraceProfile(total_flows=30_000, seed=7)
    ).generate(name="grouping-demo")
    matrix = trace.switch_intensity()

    # --- IniGroup quality vs. number of groups (Fig. 6(a) shape) -------------
    rows = []
    for group_count in (4, 6, 10, 15, 20):
        limit = max(3, -(-network.switch_count() // group_count))
        grouper = SgiGrouper(GroupingConfig(group_size_limit=limit, random_seed=7))
        started = time.perf_counter()
        grouping = grouper.initial_grouping(matrix, group_count=group_count, group_size_limit=limit)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        rows.append([
            group_count,
            limit,
            format_percent(grouping_quality(matrix, grouping)),
            f"{elapsed_ms:.1f} ms",
        ])
    print(format_table(
        ["# groups", "Size limit", "Inter-group traffic (W_inter)", "IniGroup time"],
        rows,
        title="IniGroup: fewer, larger groups keep the controller lazier",
    ))

    # --- IncUpdate after a traffic shift --------------------------------------
    grouper = SgiGrouper(GroupingConfig(group_size_limit=10, random_seed=7))
    grouping = grouper.initial_grouping(matrix)
    print(f"\nInitial grouping: {grouping.group_count()} groups, "
          f"W_inter = {format_percent(grouping_quality(matrix, grouping))}")

    # Shift: two previously unrelated switch sets start exchanging traffic.
    recent = IntensityMatrix(matrix.switches())
    switches = matrix.switches()
    for a in switches[:5]:
        for b in switches[-5:]:
            recent.record(a, b, 40.0)
    shifted = matrix.copy()
    shifted.merge(recent)
    print(f"After the shift the old grouping leaks "
          f"{format_percent(shifted.normalized_inter_group_intensity(grouping.as_sets()))} "
          "of the traffic to the controller.")

    report = grouper.incremental_update(grouping, matrix, recent)
    print(f"IncUpdate ({report.merge_split_count} merge/split steps, "
          f"{report.elapsed_seconds * 1000:.1f} ms) brings it back to "
          f"{format_percent(shifted.normalized_inter_group_intensity(report.grouping.as_sets()))}.")


if __name__ == "__main__":
    main()
