#!/usr/bin/env python3
"""Plugging a third-party control-plane design into the scenario runner.

Registers an *omniscient* control plane — a what-if upper bound where every
switch magically knows every host location, so no flow ever reaches the
controller — and compares it declaratively against the OpenFlow baseline and
LazyCtrl through the same ``ScenarioRunner``.  Nothing in ``repro.core`` is
modified: the design plugs in via ``@register_control_plane`` and is
referenced by name in the ``ScenarioSpec``.

Run with::

    python examples/custom_control_plane.py
"""

from __future__ import annotations

from repro import (
    ScenarioRunner,
    ScenarioSpec,
    ScheduleSpec,
    TopologyProfile,
    TraceSpec,
    register_control_plane,
)
from repro.analysis.reports import format_percent, format_table
from repro.core.results import SystemCounters
from repro.simulation.latency import LatencyModel
from repro.simulation.metrics import CounterSeries, LatencyRecorder
from repro.common.config import LazyCtrlConfig


class OmniscientControlPlane:
    """Upper bound: every first packet is forwarded as a flow-table hit."""

    def __init__(self, network, *, config=None, workload_bucket_seconds=7200.0,
                 latency_bucket_seconds=7200.0):
        self.network = network
        self.config = config or LazyCtrlConfig()
        self.counters = SystemCounters()
        self.latency_recorder = LatencyRecorder(latency_bucket_seconds)
        self._workload = CounterSeries(workload_bucket_seconds)
        self._latency_model = LatencyModel(self.config.latency)

    # -- ControlPlane protocol ------------------------------------------------

    def prepare(self, trace, *, warmup_end, now=0.0):
        """Omniscience needs no warm-up provisioning."""

    def handle_flow_arrival(self, flow, now):
        src = self.network.host(flow.src_host_id)
        dst = self.network.host(flow.dst_host_id)
        if src.switch_id == dst.switch_id:
            latency = self._latency_model.local_delivery().total_ms
            self.counters.local_flows += 1
        else:
            latency = self._latency_model.flow_table_hit_delivery().total_ms
        self.counters.flows_handled += 1
        self.latency_recorder.record(now, latency, count=flow.packet_count)

    def periodic(self, now):
        """No periodic housekeeping either."""

    def workload_series(self):
        return self._workload

    def total_controller_requests(self):
        return 0

    def updates_per_hour(self, *, hours):
        return [0.0] * hours


register_control_plane(
    "omniscient",
    label="Omniscient (bound)",
    description="What-if upper bound: all locations known, controller never involved",
)(OmniscientControlPlane)


def main() -> None:
    spec = ScenarioSpec(
        name="custom-plane-demo",
        topology=TopologyProfile(switch_count=24, host_count=300, seed=42),
        traffic=TraceSpec.realistic(total_flows=8_000, seed=42),
        systems=("openflow", "lazyctrl-dynamic", "omniscient"),
        schedule=ScheduleSpec(),
    )
    print(f"Running '{spec.name}' with systems: {', '.join(spec.systems)}...\n")
    result = ScenarioRunner().run(spec)

    rows = []
    for name, run in result.runs.items():
        reduction = result.reduction("openflow", name) if name != "openflow" else 0.0
        rows.append([
            run.label,
            run.total_controller_requests,
            format_percent(reduction) if name != "openflow" else "-",
            f"{run.latency.overall_mean_ms:.3f}",
        ])
    print(format_table(
        ["Control plane", "Controller requests", "Workload reduction", "Mean latency (ms)"],
        rows,
        title="OpenFlow vs LazyCtrl vs the omniscient upper bound",
    ))
    print("\nLazyCtrl should land between the reactive baseline and the bound.")


if __name__ == "__main__":
    main()
