#!/usr/bin/env python3
"""See where congestion lives: utilization heatmaps and the p99 it creates.

The ``incast-congestion`` preset fans most of a day's flows into two hot
destination hosts during a two-hour burst, against ~1 Mbps edge uplinks.
This example replays a scaled-down version with the timeline enabled and
renders the three artifacts the bandwidth subsystem adds:

* a per-uplink utilization heatmap — the burst shows up as a dark band on
  the two hot switches' rows while every other uplink stays blank;
* the hot-links report — which uplinks exceeded capacity and for how many
  accounting windows;
* per-system p50/p95/p99 first-packet latency — congestion is a tail
  phenomenon: both control planes pay the same M/M/1 queueing on the same
  overloaded pipes, so the *means* barely separate, but OpenFlow's tail
  compounds queueing onto reactive-setup round trips while LazyCtrl keeps
  the hot fan-in inside a group and its p99 stays visibly lower.

Run with::

    python examples/incast_congestion_heatmap.py
"""

from __future__ import annotations

import dataclasses

from repro.analysis import hot_links_report, latency_percentile_rows, render_heatmap
from repro.analysis.reports import format_table
from repro.core.presets import get_preset
from repro.core.runner import ScenarioRunner
from repro.obs.tracer import TraceOptions

FLOWS = 40_000


def main() -> None:
    spec = get_preset("incast-congestion").specs()[0]
    # Offered load scales with the flow count, so shrink the uplinks by the
    # same factor to keep the burst just past capacity at example scale.
    scale = FLOWS / spec.traffic.params["total_flows"]
    links = dataclasses.replace(spec.links, uplink_mbps=spec.links.uplink_mbps * scale)
    spec = dataclasses.replace(
        spec, traffic=spec.traffic.with_params(total_flows=FLOWS), links=links
    )

    result = ScenarioRunner().run(spec, obs=TraceOptions(timeline=True))

    for run in result.runs.values():
        print(render_heatmap(run.links, label=f"{spec.name} · {run.label}"))
        print(hot_links_report(run.links))
        print()

    print(
        format_table(
            ["Control plane", "p50 (ms)", "p95 (ms)", "p99 (ms)"],
            latency_percentile_rows(list(result.runs.values())),
            title="First-packet latency percentiles",
        )
    )

    # The congestion accounting is shared by construction: both systems see
    # the same offered load on the same uplinks, so their matrices agree.
    runs = list(result.runs.values())
    assert all(run.links.peak_utilization == runs[0].links.peak_utilization for run in runs)
    print(f"\npeak offered load: {runs[0].links.peak_utilization:.2f}x capacity")


if __name__ == "__main__":
    main()
