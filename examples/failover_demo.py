#!/usr/bin/env python3
"""Failure detection and failover inside a Local Control Group.

Reproduces the paper's §III-E machinery end to end:

1. build a LazyCtrl deployment and pick one Local Control Group;
2. show the failure-detection wheel (ring order, keep-alive probes);
3. fail the designated switch, run a probe round, infer the failure class
   (Table I) and apply the recovery actions (backup promotion, outage notice,
   remote reboot);
4. bring the switch back and re-synchronize group state;
5. demonstrate control-link and peer-link failure handling.

Run with::

    python examples/failover_demo.py
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.common.config import GroupingConfig, LazyCtrlConfig
from repro.core.system import LazyCtrlSystem
from repro.failover.detection import DetectionResult, FailureDetector, FailureKind
from repro.failover.recovery import FailoverManager
from repro.topology.builder import TopologyProfile, build_multi_tenant_datacenter
from repro.traffic.realistic import RealisticTraceGenerator, RealisticTraceProfile


def main() -> None:
    network = build_multi_tenant_datacenter(
        TopologyProfile(switch_count=18, host_count=240, seed=23, home_switches_per_tenant=2)
    )
    trace = RealisticTraceGenerator(
        network, RealisticTraceProfile(total_flows=6_000, seed=23)
    ).generate(name="failover-demo")
    config = LazyCtrlConfig(grouping=GroupingConfig(group_size_limit=6, random_seed=23),
                            designated_backup_count=1)
    system = LazyCtrlSystem(network, config=config, dynamic_grouping=False)
    system.install_initial_grouping(trace, warmup_end=3600.0)

    group = max(system.controller.groups.values(), key=len)
    print(f"Using group {group.group_id}: members {group.member_ids()}, "
          f"designated switch {group.designated_switch_id}, backups {group.backup_switch_ids}")
    print(f"Failure-detection wheel order: {group.ring_order()}\n")

    detector = FailureDetector(group, keepalive_interval=1.0)
    manager = FailoverManager(system.controller, group)

    # --- designated switch failure -------------------------------------------
    victim = group.designated_switch_id
    print(f"Injecting a failure of the designated switch {victim}...")
    group.member(victim).failed = True
    detections = detector.detect()
    rows = [[d.switch_id, d.failure.value] for d in detections]
    print(format_table(["Switch", "Inferred failure (Table I)"], rows, title="Detection results"))

    records = manager.handle_all(detections)
    print(format_table(
        ["Subject", "Action", "Detail"],
        [[r.switch_id, r.action.value, r.detail] for r in records],
        title="Recovery actions",
    ))
    print(f"New designated switch: {group.designated_switch_id}\n")

    print(f"Switch {victim} comes back; re-synchronizing group state...")
    group.member(victim).failed = False
    for record in manager.complete_switch_recovery(victim):
        print(f"  {record.action.value}: {record.detail}")

    # --- link failures ---------------------------------------------------------
    print("\nHandling a control-link failure and a peer-link failure:")
    some_switch = group.member_ids()[0]
    for failure in (FailureKind.CONTROL_LINK, FailureKind.PEER_LINK_DOWN):
        for record in manager.handle(DetectionResult(switch_id=some_switch, failure=failure)):
            print(f"  {failure.value:>16}: {record.action.value} ({record.detail})")

    print(f"\nKeep-alive probes sent in this demo: {detector.probes_sent}")
    print(f"Recovery records accumulated: {len(manager.records)}")


if __name__ == "__main__":
    main()
